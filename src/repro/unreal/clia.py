"""The exact decision procedure for CLIA SyGuS problems with examples (§6).

The grammar may mix integer and Boolean nonterminals, mutually recursive
through ``IfThenElse`` guards.  The procedure is the SolveMutual algorithm of
§6.4:

* **Step 1 (SolveBool, §6.3)** — with the integer nonterminals fixed to their
  values from the previous round, the Boolean equations live in the finite
  domain of Boolean-vector sets and are solved by Kleene iteration
  (Lem. 6.5);
* **Step 2 (RemIf + Newton, §6.4)** — with the Boolean nonterminals fixed,
  the integer equations are rewritten by RemIf into pure
  combine/extend form over ``(nonterminal, mask)`` variables (Lem. 6.8) and
  solved exactly with Newton's method, stratified as in §7.

The alternation terminates after at most ``|N| * 2^|E|`` rounds (Lem. 6.6)
because the Boolean-vector sets only ever grow.  The resulting abstraction is
exact (Lem. 6.2), so Alg. 1 returns two-valued verdicts (Thm. 6.9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.domains.boolvectors import BoolVectorSet
from repro.domains.clia import CliaInterpretation
from repro.domains.semilinear import SemiLinearSet
from repro.engine.cache import get_cache
from repro.gfa.builder import build_remif_equations
from repro.gfa.fixpoint import (
    DENSE,
    WORKLIST,
    FixpointDivergenceError,
    check_strategy,
    invert_dependencies,
    solve_dense,
    solve_worklist,
)
from repro.gfa.newton import solve_stratified
from repro.gfa.semiring import SemiLinearSemiring
from repro.gfa.stratify import equation_strata, single_stratum
from repro.grammar.alphabet import Sort
from repro.grammar.analysis import productive_nonterminals
from repro.grammar.automaton import PruneReport
from repro.grammar.rtg import Nonterminal, RegularTreeGrammar
from repro.semantics.examples import ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.unreal.certificates import (
    build_clia_certificate,
    build_unproductive_certificate,
)
from repro.unreal.check import check_unrealizable
from repro.unreal.result import CheckResult, Verdict
from repro.utils.errors import SolverLimitError, UnsupportedFeatureError
from repro.utils.vectors import BoolVector


@dataclass
class CliaGfaSolution:
    """Solved CLIA GFA problem: values for integer and Boolean nonterminals."""

    start_value: SemiLinearSet
    integer_values: Dict[Nonterminal, SemiLinearSet]
    boolean_values: Dict[Nonterminal, BoolVectorSet]
    outer_iterations: int
    solve_seconds: float
    evaluations: int = 0
    prune_report: "PruneReport | None" = None


def solve_clia_gfa(
    grammar: RegularTreeGrammar,
    examples: ExampleSet,
    stratify: bool = True,
    simplify: bool = True,
    max_outer_iterations: int | None = None,
    strategy: str = WORKLIST,
    interpretation: CliaInterpretation | None = None,
    prune: str = "off",
) -> CliaGfaSolution:
    """SolveMutual (§6.4): exact abstraction of a CLIA grammar on examples.

    ``interpretation`` substitutes the production functions — the default is
    the exact :class:`CliaInterpretation`; the certificate builder passes a
    coarser comparison interpretation whose transfers the independent proof
    checker can replay without a solver.

    ``prune`` applies the tree-automaton grammar reduction before any
    equations are built (see :func:`repro.grammar.automaton.prune_grammar`);
    the returned value maps cover every nonterminal of the unpruned
    normalized grammar via the prune report's representative expansion.
    """
    check_strategy(strategy)
    normalized = get_cache().normalized(grammar)
    if not normalized.is_clia():
        raise UnsupportedFeatureError("grammar contains operators outside CLIA")
    report: "PruneReport | None" = None
    if prune != "off":
        normalized, report = get_cache().pruned(normalized, examples, prune)
    dimension = len(examples)
    if interpretation is None:
        interpretation = CliaInterpretation(examples)
    semiring = SemiLinearSemiring(dimension, simplify=simplify)

    integer_nts = [nt for nt in normalized.nonterminals if nt.sort == Sort.INT]
    boolean_nts = [nt for nt in normalized.nonterminals if nt.sort == Sort.BOOL]
    if max_outer_iterations is None:
        max_outer_iterations = max(2, len(normalized.nonterminals) * (2 ** dimension) + 2)

    start_time = time.monotonic()
    productive = productive_nonterminals(normalized)
    if normalized.start not in productive:
        empty = SemiLinearSet.empty(dimension)
        return CliaGfaSolution(
            empty, {normalized.start: empty}, {}, 0, 0.0, prune_report=report
        )

    integer_values: Dict[Nonterminal, SemiLinearSet] = {
        nt: SemiLinearSet.empty(dimension) for nt in integer_nts
    }
    boolean_values: Dict[Nonterminal, BoolVectorSet] = {
        nt: BoolVectorSet.empty(dimension) for nt in boolean_nts
    }
    all_true = BoolVector.all_true(dimension)

    evaluations = 0
    for iteration in range(1, max_outer_iterations + 1):
        new_boolean, bool_evaluations = solve_bool(
            normalized, interpretation, integer_values, strategy=strategy
        )
        system = build_remif_equations(normalized, interpretation, new_boolean)
        strata = equation_strata(system) if stratify else single_stratum(system)
        solution = solve_stratified(system, semiring, strata, strategy=strategy)
        evaluations += bool_evaluations + solution.stats.evaluations
        new_integer = {nt: solution[(nt, all_true)] for nt in integer_nts}

        boolean_stable = all(
            new_boolean[nt] == boolean_values[nt] for nt in boolean_nts
        )
        integer_stable = all(
            semiring.equal(new_integer[nt], integer_values[nt]) for nt in integer_nts
        )
        integer_values, boolean_values = new_integer, new_boolean
        if boolean_stable and integer_stable:
            elapsed = time.monotonic() - start_time
            if report is not None:
                integer_values = report.expand_values(integer_values)
                boolean_values = report.expand_values(boolean_values)
            return CliaGfaSolution(
                start_value=integer_values[normalized.start],
                integer_values=integer_values,
                boolean_values=boolean_values,
                outer_iterations=iteration,
                solve_seconds=elapsed,
                evaluations=evaluations,
                prune_report=report,
            )
    raise SolverLimitError("SolveMutual did not converge within its iteration bound")


def solve_bool(
    grammar: RegularTreeGrammar,
    interpretation: CliaInterpretation,
    integer_values: Dict[Nonterminal, SemiLinearSet],
    strategy: str = WORKLIST,
) -> "Tuple[Dict[Nonterminal, BoolVectorSet], int]":
    """SolveBool (§6.3): fixpoint iteration over the finite Boolean domain.

    Returns the per-nonterminal Boolean-vector sets together with the number
    of nonterminal evaluations performed.  The default worklist strategy only
    re-evaluates a nonterminal when one of the Boolean nonterminals it reads
    changed; ``"dense"`` is the historical every-nonterminal-every-round
    iteration.  Lem. 6.5 bounds the visits by ``n * 2^|E|``.
    """
    dimension = interpretation.dimension
    boolean_nts = [nt for nt in grammar.nonterminals if nt.sort == Sort.BOOL]
    initial: Dict[Nonterminal, BoolVectorSet] = {
        nt: BoolVectorSet.empty(dimension) for nt in boolean_nts
    }

    def step(nonterminal, values, visit):
        accumulated = values[nonterminal]
        for production in grammar.productions_of(nonterminal):
            arguments = []
            for argument in production.args:
                if argument.sort == Sort.INT:
                    arguments.append(integer_values[argument])
                else:
                    arguments.append(values[argument])
            result = interpretation.apply(
                production.symbol.name, production.symbol.payload, arguments
            )
            accumulated = accumulated.combine(result)
        return accumulated

    # Lem. 6.5: at most n * 2^|E| rounds/visits are needed.
    bound = max(2, len(boolean_nts) * (2 ** dimension) + 2)
    equal = BoolVectorSet.__eq__
    try:
        if strategy == DENSE:
            values, stats = solve_dense(
                boolean_nts, initial, step, equal, max_iterations=bound
            )
        else:
            dependencies = {
                nt: [
                    argument
                    for production in grammar.productions_of(nt)
                    for argument in production.args
                    if argument.sort == Sort.BOOL
                ]
                for nt in boolean_nts
            }
            values, stats = solve_worklist(
                boolean_nts,
                initial,
                step,
                equal,
                invert_dependencies(dependencies),
                max_visits=bound,
            )
    except FixpointDivergenceError as error:
        # Only the driver's own budget is translated; SolverLimitErrors from
        # inside the step (ILP/elimination budgets) keep their diagnostics.
        raise SolverLimitError(
            "SolveBool did not converge within its iteration bound"
        ) from error
    return values, stats.evaluations


def check_clia_examples(
    problem: SyGuSProblem,
    examples: ExampleSet,
    stratify: bool = True,
    strategy: str = WORKLIST,
    prune: str = "off",
) -> CheckResult:
    """Alg. 1 instantiated with the exact CLIA abstraction (§6.5, Thm. 6.9)."""
    if len(examples) == 0:
        productive = productive_nonterminals(problem.grammar)
        if problem.grammar.start in productive:
            return CheckResult(verdict=Verdict.REALIZABLE, examples=examples)
        return CheckResult(
            verdict=Verdict.UNREALIZABLE,
            examples=examples,
            certificate=build_unproductive_certificate(problem),
        )
    gfa = solve_clia_gfa(
        problem.grammar, examples, stratify=stratify, strategy=strategy, prune=prune
    )
    result = check_unrealizable(
        gfa.start_value,
        problem.spec,
        examples,
        exact=True,
        abstraction_size=gfa.start_value.size,
    )
    if result.verdict == Verdict.UNREALIZABLE:
        # The certificate builder re-solves with its own coarse
        # interpretation over the unpruned normalization, so the knob never
        # reaches it.
        result.certificate = build_clia_certificate(problem, examples)
    result.details["gfa_seconds"] = gfa.solve_seconds
    result.details["outer_iterations"] = gfa.outer_iterations
    result.details["gfa_evaluations"] = gfa.evaluations
    if gfa.prune_report is not None:
        result.details["grammar_stats"] = gfa.prune_report.counters()
    result.details["boolean_values"] = {
        str(nt): str(value) for nt, value in gfa.boolean_values.items()
    }
    return result
