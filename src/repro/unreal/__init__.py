"""Unrealizability checking: the paper's core contribution.

* :mod:`repro.unreal.result` — verdict types;
* :mod:`repro.unreal.check` — Alg. 1 (CheckUnrealizable) over any abstraction;
* :mod:`repro.unreal.lia` — the exact decision procedure for LIA grammars (§5);
* :mod:`repro.unreal.clia` — the exact decision procedure for CLIA grammars
  (§6: SolveBool, SolveMutual, RemIf);
* :mod:`repro.unreal.approximate` — the sound, incomplete abstract-domain
  instantiation (§4.3) used by the NayHorn/NOPE substitutes;
* :mod:`repro.unreal.cegis` — Alg. 2, the CEGIS loop with random examples.
"""

from repro.unreal.result import Verdict, CheckResult, CegisResult
from repro.unreal.check import check_unrealizable
from repro.unreal.lia import solve_lia_gfa, check_lia_examples
from repro.unreal.clia import solve_clia_gfa, check_clia_examples
from repro.unreal.approximate import check_examples_abstract
from repro.unreal.cegis import NaySolver, NayConfig

__all__ = [
    "Verdict",
    "CheckResult",
    "CegisResult",
    "check_unrealizable",
    "solve_lia_gfa",
    "check_lia_examples",
    "solve_clia_gfa",
    "check_clia_examples",
    "check_examples_abstract",
    "NaySolver",
    "NayConfig",
]
