"""Algorithm 1: CheckUnrealizable over an arbitrary abstraction (§4.3).

Given the abstract value computed for the start nonterminal, the check builds
the property

    P  :=  gamma_hat(n(Start), o)  AND  AND_j  psi(o_j, i_j)

(Thm. 4.5) and hands it to the QF-LIA solver.  ``P`` unsatisfiable implies
the example-restricted problem is unrealizable; if the abstraction is exact,
``P`` satisfiable implies it is realizable, otherwise the answer is unknown.
"""

from __future__ import annotations

import time
from typing import Protocol, Sequence

from repro.logic.formulas import Formula, conjunction
from repro.logic.solver import SolverContext
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult, Verdict


class SymbolicAbstraction(Protocol):
    """Any abstract value supporting symbolic concretization (§5.4)."""

    def symbolic(self, outputs: Sequence[LinearExpression]) -> Formula:
        """gamma_hat(self, outputs)."""


def output_variables(count: int) -> list[LinearExpression]:
    """The output variables ``o_1 ... o_n`` shared by all disjuncts (§5.4)."""
    return [LinearExpression.variable(f"_o{index}") for index in range(count)]


def unrealizability_property(
    abstraction: SymbolicAbstraction,
    spec: Specification,
    examples: ExampleSet,
) -> Formula:
    """The property ``P`` of Thm. 4.5."""
    outputs = output_variables(len(examples))
    membership = abstraction.symbolic(outputs)
    spec_instances = [
        spec.instantiate(example, outputs[index])
        for index, example in enumerate(examples)
    ]
    return conjunction([membership] + spec_instances)


def check_unrealizable(
    abstraction: SymbolicAbstraction,
    spec: Specification,
    examples: ExampleSet,
    exact: bool,
    abstraction_size: int = 0,
) -> CheckResult:
    """Lines 3-5 of Alg. 1: decide the verdict from the abstraction.

    The conjuncts of ``P`` go into a :class:`SolverContext` one by one — the
    membership disjunction and each example's spec instance are normalized
    independently, and the solver's cross-query cache/lemma stores carry
    shared sub-conjunctions across the checks a CEGIS loop issues.
    """
    start_time = time.monotonic()
    outputs = output_variables(len(examples))
    context = SolverContext()
    context.assert_formula(abstraction.symbolic(outputs))
    for index, example in enumerate(examples):
        context.assert_formula(spec.instantiate(example, outputs[index]))
    result = context.check()
    elapsed = time.monotonic() - start_time
    if result.is_unsat:
        verdict = Verdict.UNREALIZABLE
    elif exact:
        verdict = Verdict.REALIZABLE
    else:
        verdict = Verdict.UNKNOWN
    # The model is normalized to a plain {str: int} dict at construction so
    # the result's ``details`` payload is always JSON-serializable (the api
    # wire format embeds it verbatim).
    details = (
        {"model": {str(name): int(value) for name, value in result.model.items()}}
        if result.is_sat and result.model is not None
        else {}
    )
    details["solver"] = dict(result.statistics)
    return CheckResult(
        verdict=verdict,
        examples=examples,
        elapsed_seconds=elapsed,
        abstraction_size=abstraction_size,
        details=details,
    )
