"""Engine-side builders for unrealizability certificates.

Each builder assembles the JSON payload that
:mod:`repro.analysis.certcheck` knows how to re-verify, then *runs the
checker on it* before handing it back — a certificate that does not verify
is never attached (the verdict itself is unaffected; certificates are
best-effort, verdicts are not).  Builders live on the engine side of the
trust boundary, so they are free to use the solver:

* the semi-linear builders extract explicit non-negative-combination
  subsumption justifications with small ILP queries, which the checker then
  re-verifies with pure integer arithmetic;
* the CLIA builder re-solves the fixpoint under a *coarse* comparison
  interpretation (the checker's refutation-pruned interval hulls instead of
  per-vector solver feasibility queries) so that the claimed Boolean values
  contain the checker's solver-free comparison transfer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.certcheck import (
    CERTIFICATE_FORMAT,
    _semilinear_transfer,
    _verify_subsumption,
    check_certificate,
    encode_value,
    semilinear_comparison,
)
from repro.domains.base import AbstractDomain
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.grammar.alphabet import Sort
from repro.grammar.analysis import productive_nonterminals
from repro.grammar.rtg import Nonterminal
from repro.grammar.transforms import normalize_for_gfa
from repro.logic.formulas import atom_eq, atom_ge
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.utils.vectors import IntVector


def _base_payload(kind: str, examples: Optional[ExampleSet]) -> Dict[str, object]:
    payload: Dict[str, object] = {"format": CERTIFICATE_FORMAT, "kind": kind}
    if examples is not None:
        payload["examples"] = [dict(entry) for entry in examples.as_dicts()]
    return payload


def _validated(
    problem: SyGuSProblem, payload: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """Ship a certificate only if the independent checker accepts it."""
    return payload if check_certificate(problem, payload) else None


def build_unproductive_certificate(
    problem: SyGuSProblem,
) -> Optional[Dict[str, object]]:
    return _validated(problem, _base_payload("unproductive", None))


def build_abstract_certificate(
    problem: SyGuSProblem,
    examples: ExampleSet,
    values: Dict[Nonterminal, object],
    abstraction: AbstractDomain,
) -> Optional[Dict[str, object]]:
    """Certificate for an approximate fixpoint (interval/numeric/powerset)."""
    name = abstraction.name
    knobs: Dict[str, int] = {}
    if name == "powerset":
        knobs = {
            "cap": int(getattr(abstraction, "cap", 0)),
            "max_examples": int(getattr(abstraction, "max_examples", 0)),
        }
    elif name not in ("interval", "numeric"):
        return None
    payload = _base_payload("abstract_fixpoint", examples)
    payload["domain"] = name
    payload["domain_knobs"] = knobs
    try:
        payload["values"] = {
            nonterminal.name: encode_value(value)
            for nonterminal, value in values.items()
        }
    except Exception:  # noqa: BLE001 - unencodable value: no certificate
        return None
    return _validated(problem, payload)


def build_chc_certificate(
    problem: SyGuSProblem, abstract_certificate: Optional[Dict[str, object]]
) -> Optional[Dict[str, object]]:
    """Re-shape a numeric ``abstract_fixpoint`` certificate as a CHC model.

    The Horn clauses are generated one per normalized production (in order),
    so the abstract values re-keyed by predicate name *are* the clause-wise
    model; the stored clause renders pin down the system the model is for.
    """
    if not isinstance(abstract_certificate, dict):
        return None
    if abstract_certificate.get("kind") != "abstract_fixpoint":
        return None
    if abstract_certificate.get("domain") != "numeric":
        return None
    # Lazy for the same package-cycle reason as in the checker.
    from repro.horn.clauses import _predicate_name, encode_gfa_as_horn

    examples = ExampleSet.from_dicts(abstract_certificate["examples"])
    system = encode_gfa_as_horn(problem.grammar, examples, problem.spec)
    normalized = normalize_for_gfa(problem.grammar)
    values = abstract_certificate["values"]
    try:
        model = {
            _predicate_name(nonterminal): values[nonterminal.name]
            for nonterminal in normalized.nonterminals
        }
    except KeyError:
        return None
    payload = _base_payload("chc_model", examples)
    payload["clauses"] = [clause.render() for clause in system.clauses]
    payload["model"] = model
    return _validated(problem, payload)


# ---------------------------------------------------------------------------
# Semi-linear certificates (exact engines)
# ---------------------------------------------------------------------------


def _nonneg_combination(
    target: IntVector, generators: Tuple[IntVector, ...]
) -> Optional[List[int]]:
    """Non-negative integers ``l`` with ``sum l_i * generators_i == target``.

    One small ILP per query (engine side — the checker only re-verifies the
    returned coefficients arithmetically).
    """
    if not generators:
        return [] if target.is_zero() else None
    from repro.logic.solver import SolverContext

    context = SolverContext()
    names = [f"_cert_j{index}" for index in range(len(generators))]
    for name in names:
        context.assert_formula(atom_ge(LinearExpression.variable(name), 0))
    for coordinate in range(target.dimension):
        combination = LinearExpression(
            {
                name: generator[coordinate]
                for name, generator in zip(names, generators)
            },
            0,
        )
        context.assert_formula(atom_eq(combination, target[coordinate]))
    result = context.check([])
    if not result.is_sat or result.model is None:
        return None
    return [int(result.model.get(name, 0)) for name in names]


def _find_subsumption(
    candidate: LinearSet, claimed: SemiLinearSet
) -> Optional[Dict[str, object]]:
    """An explicit justification that ``candidate`` ⊆ some claimed set."""
    difference_cache: Dict[IntVector, IntVector] = {}
    for container_index, container in enumerate(claimed.linear_sets):
        offset_delta = difference_cache.get(container.offset)
        if offset_delta is None:
            offset_delta = candidate.offset + container.offset.scale(-1)
            difference_cache[container.offset] = offset_delta
        lambdas = _nonneg_combination(offset_delta, container.generators)
        if lambdas is None:
            continue
        images = []
        for generator in candidate.generators:
            row = _nonneg_combination(generator, container.generators)
            if row is None:
                break
            images.append(row)
        else:
            justification = {
                "container": container_index,
                "offset_lambdas": lambdas,
                "generator_images": images,
            }
            if _verify_subsumption(candidate, claimed, justification):
                return justification
    return None


def _semilinear_payload(
    problem: SyGuSProblem,
    examples: ExampleSet,
    int_values: Dict[Nonterminal, SemiLinearSet],
    bool_values: Dict[Nonterminal, BoolVectorSet],
) -> Optional[Dict[str, object]]:
    """Assemble (and validate) a ``semilinear_fixpoint`` certificate."""
    grammar = normalize_for_gfa(problem.grammar)
    justifications: Dict[str, object] = {}
    try:
        for index, production in enumerate(grammar.productions):
            if production.lhs.sort == Sort.BOOL:
                continue  # the checker re-verifies Boolean legs directly
            computed = _semilinear_transfer(
                production, int_values, bool_values, examples
            )
            claimed = int_values[production.lhs]
            claimed_sets = set(claimed.linear_sets)
            for position, linear_set in enumerate(computed.linear_sets):
                if linear_set in claimed_sets:
                    continue
                justification = _find_subsumption(linear_set, claimed)
                if justification is None:
                    return None
                justifications[f"{index}:{position}"] = justification
        payload = _base_payload("semilinear_fixpoint", examples)
        payload["values"] = {
            nonterminal.name: encode_value(value)
            for nonterminal, value in int_values.items()
            if nonterminal in set(grammar.nonterminals)
        }
        payload["boolean_values"] = {
            nonterminal.name: encode_value(value)
            for nonterminal, value in bool_values.items()
            if nonterminal in set(grammar.nonterminals)
        }
        payload["justifications"] = justifications
    except Exception:  # noqa: BLE001 - any gap means "no certificate"
        return None
    return _validated(problem, payload)


def build_lia_certificate(
    problem: SyGuSProblem,
    examples: ExampleSet,
    values: Dict[Nonterminal, SemiLinearSet],
) -> Optional[Dict[str, object]]:
    """Certificate for the exact LIA engine's Newton fixpoint."""
    if problem.grammar.start not in productive_nonterminals(problem.grammar):
        return build_unproductive_certificate(problem)
    return _semilinear_payload(problem, examples, dict(values), {})


def build_clia_certificate(
    problem: SyGuSProblem, examples: ExampleSet
) -> Optional[Dict[str, object]]:
    """Certificate for the exact CLIA engine.

    The engine's own Boolean values come from per-vector feasibility queries
    the checker cannot replay, so the builder re-solves the fixpoint under
    the *coarse* interval-hull comparison — a sound over-approximation of
    the exact abstraction whose transfers the checker can recompute exactly.
    Unrealizability of the coarser fixpoint still refutes the problem.
    """
    if problem.grammar.start not in productive_nonterminals(problem.grammar):
        return build_unproductive_certificate(problem)
    try:
        from repro.unreal.clia import solve_clia_gfa

        solution = solve_clia_gfa(
            problem.grammar, examples, interpretation=_CoarseCliaInterpretation(examples)
        )
    except Exception:  # noqa: BLE001 - coarse re-solve may diverge: no cert
        return None
    return _semilinear_payload(
        problem, examples, dict(solution.integer_values), dict(solution.boolean_values)
    )


def _coarse_interpretation_class():
    """``CliaInterpretation`` with hull-based comparisons, imported lazily.

    :mod:`repro.domains.clia` pulls the solver in at module import, which the
    *checker* must never do; the builder only touches it here.
    """
    from repro.domains.clia import CliaInterpretation

    class CoarseCliaInterpretation(CliaInterpretation):
        """Comparisons via the checker's refutation-pruned hull transfer."""

        def comparison(
            self, name: str, left: SemiLinearSet, right: SemiLinearSet
        ) -> BoolVectorSet:
            if left.is_empty() or right.is_empty():
                return BoolVectorSet.empty(self.dimension)
            return semilinear_comparison(name, left, right, self.dimension)

    return CoarseCliaInterpretation


def _CoarseCliaInterpretation(examples: ExampleSet):
    return _coarse_interpretation_class()(examples)
