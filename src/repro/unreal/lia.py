"""The exact decision procedure for LIA SyGuS problems with examples (§5).

Pipeline (Thm. 5.9):

1. normalise the grammar: lower n-ary Plus, remove Minus (§5.2), trim;
2. build the GFA equation system over semi-linear sets (Eqn. 25);
3. solve it exactly with Newton's method, stratified by the SCCs of the
   dependence graph (§5.1, §7);
4. run Alg. 1's final satisfiability check (§5.4).

Because the abstraction is exact (Lem. 5.6), the verdict is two-valued:
``UNREALIZABLE`` or ``REALIZABLE`` (over the given examples).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.domains.semilinear import SemiLinearSet
from repro.engine.cache import get_cache
from repro.gfa.newton import solve_newton, solve_stratified
from repro.gfa.semiring import SemiLinearSemiring
from repro.gfa.stratify import equation_strata, single_stratum
from repro.grammar.analysis import productive_nonterminals
from repro.grammar.automaton import PruneReport
from repro.grammar.rtg import Nonterminal, RegularTreeGrammar
from repro.semantics.examples import ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.unreal.certificates import (
    build_lia_certificate,
    build_unproductive_certificate,
)
from repro.unreal.check import check_unrealizable
from repro.unreal.result import CheckResult, Verdict
from repro.utils.errors import UnsupportedFeatureError


@dataclass
class GfaSolution:
    """The solved GFA problem: one abstract value per nonterminal."""

    start_value: SemiLinearSet
    values: Dict[Nonterminal, SemiLinearSet]
    solve_seconds: float
    iterations: int = 0
    evaluations: int = 0
    prune_report: Optional[PruneReport] = None


def solve_lia_gfa(
    grammar: RegularTreeGrammar,
    examples: ExampleSet,
    stratify: bool = True,
    simplify: bool = True,
    strategy: str = "worklist",
    prune: str = "off",
) -> GfaSolution:
    """Compute ``n_{G_E}(X)`` for every nonterminal of an LIA grammar.

    ``strategy`` selects the fixpoint machinery (see
    :mod:`repro.gfa.fixpoint`): ``"worklist"`` (default) uses the sparse,
    dependency-driven Newton solver; ``"dense"`` rebuilds the full Jacobian
    every round (debug fallback / perf baseline).

    ``prune`` shrinks the grammar before any equations exist (see
    :func:`repro.grammar.automaton.prune_grammar`): ``"reduce"`` merges
    exactly language-equal nonterminals, ``"oe"`` additionally merges
    leaves with identical behavior vectors on ``examples``.  The returned
    ``values`` always cover every nonterminal of the *unpruned* normalized
    grammar — merged nonterminals report their representative's value —
    so certificate builders are unaffected by the knob.
    """
    cache = get_cache()
    normalized = cache.normalized(grammar)
    if not normalized.is_lia_plus():
        raise UnsupportedFeatureError(
            "grammar is not an LIA grammar; use the CLIA procedure instead"
        )
    semiring = SemiLinearSemiring(len(examples), simplify=simplify)

    start_time = time.monotonic()
    report: Optional[PruneReport] = None
    if prune != "off":
        normalized, report = cache.pruned(normalized, examples, prune)
    productive = productive_nonterminals(normalized)
    if normalized.start not in productive:
        empty = SemiLinearSet.empty(len(examples))
        return GfaSolution(
            empty, {normalized.start: empty}, 0.0, prune_report=report
        )

    system = cache.lia_equations(normalized, examples)
    strata = equation_strata(system) if stratify else single_stratum(system)
    solution = solve_stratified(system, semiring, strata, strategy=strategy)
    elapsed = time.monotonic() - start_time
    values = dict(solution)
    if report is not None:
        values = report.expand_values(values)
    return GfaSolution(
        start_value=solution[normalized.start],
        values=values,
        solve_seconds=elapsed,
        iterations=solution.stats.iterations,
        evaluations=solution.stats.evaluations,
        prune_report=report,
    )


def check_lia_examples(
    problem: SyGuSProblem,
    examples: ExampleSet,
    stratify: bool = True,
    strategy: str = "worklist",
    prune: str = "off",
) -> CheckResult:
    """Alg. 1 instantiated with the exact semi-linear-set domain (§5)."""
    if len(examples) == 0:
        return _empty_example_check(problem, examples)
    gfa = solve_lia_gfa(
        problem.grammar, examples, stratify=stratify, strategy=strategy, prune=prune
    )
    result = check_unrealizable(
        gfa.start_value,
        problem.spec,
        examples,
        exact=True,
        abstraction_size=gfa.start_value.size,
    )
    if result.verdict == Verdict.UNREALIZABLE:
        result.certificate = build_lia_certificate(problem, examples, gfa.values)
    result.details["gfa_seconds"] = gfa.solve_seconds
    result.details["gfa_evaluations"] = gfa.evaluations
    if gfa.prune_report is not None:
        result.details["grammar_stats"] = gfa.prune_report.counters()
    return result


def _empty_example_check(problem: SyGuSProblem, examples: ExampleSet) -> CheckResult:
    """With no examples, sy_E is realizable iff the grammar's language is
    nonempty (any term vacuously satisfies the empty conjunction)."""
    productive = productive_nonterminals(problem.grammar)
    if problem.grammar.start in productive:
        return CheckResult(verdict=Verdict.REALIZABLE, examples=examples)
    return CheckResult(
        verdict=Verdict.UNREALIZABLE,
        examples=examples,
        certificate=build_unproductive_certificate(problem),
    )
