"""The approximate instantiation of the framework (§4.3), domain-generic.

The paper's generic recipe for arbitrary SyGuS problems is: pick any abstract
domain, solve the GFA equations with Kleene iteration (adding a widening
operator when the domain has infinite ascending chains), and run Alg. 1's
final check.  The result is sound but incomplete — ``UNREALIZABLE`` answers
are trustworthy; everything else is ``UNKNOWN`` unless the domain stayed
exact (in which case ``REALIZABLE`` is also trustworthy, Thm. 4.5(2)).

This module owns the *solver*: generic chaotic iteration with widening over
any :class:`~repro.domains.base.AbstractDomain`, resolved by registry name
(:mod:`repro.domains.registry`).  The abstractions themselves live in
:mod:`repro.domains` — ``"numeric"`` (the interval x congruence reduced
product, default, and the engine behind the NayHorn/NOPE Spacer substitutes;
see DESIGN.md), ``"interval"`` (plain boxes, solver-free check),
``"powerset"`` (exact finite behavior sets), and ``"product"`` (the generic
reduced-product combinator).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

from repro.domains.registry import DomainLike, resolve_domain
from repro.engine.cache import get_cache
from repro.gfa.fixpoint import (
    DENSE,
    WORKLIST,
    FixpointDivergenceError,
    check_strategy,
    invert_dependencies,
    solve_dense,
    solve_worklist,
)
from repro.grammar.analysis import productive_nonterminals
from repro.grammar.automaton import PruneReport
from repro.grammar.rtg import Nonterminal, RegularTreeGrammar
from repro.semantics.examples import ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.unreal.certificates import (
    build_abstract_certificate,
    build_unproductive_certificate,
)
from repro.unreal.result import CheckResult, Verdict
from repro.utils.errors import SolverLimitError

#: The abstraction used when no domain is requested: the interval x
#: congruence reduced product the repo has always shipped.
DEFAULT_DOMAIN = "numeric"


@dataclass
class AbstractSolution:
    """Fixpoint of the approximate GFA problem."""

    start_value: object
    values: Dict[Nonterminal, object]
    iterations: int
    solve_seconds: float
    evaluations: int = 0
    domain: str = DEFAULT_DOMAIN
    prune_report: "PruneReport | None" = None


def solve_abstract_gfa(
    grammar: RegularTreeGrammar,
    examples: ExampleSet,
    widening_delay: int = 6,
    max_iterations: int = 500,
    strategy: str = WORKLIST,
    domain: DomainLike = DEFAULT_DOMAIN,
    prune: str = "off",
):
    """Chaotic iteration with widening over a pluggable abstract domain.

    ``domain`` is a registry name or a ready
    :class:`~repro.domains.base.AbstractDomain` instance.  The default
    worklist strategy only re-evaluates a nonterminal when one of the
    nonterminals its productions mention changed; ``"dense"`` sweeps every
    nonterminal every round (debug fallback / perf baseline).  ``prune``
    shrinks the grammar first (:func:`repro.grammar.automaton.prune_grammar`);
    merged nonterminals reappear in ``values`` with their representative's
    fixpoint value.
    """
    check_strategy(strategy)
    abstraction = resolve_domain(domain)
    normalized = get_cache().normalized(grammar)
    report: "PruneReport | None" = None
    if prune != "off":
        normalized, report = get_cache().pruned(normalized, examples, prune)
    dimension = len(examples)
    initial: Dict[Nonterminal, object] = {
        nonterminal: abstraction.bottom(nonterminal.sort, dimension)
        for nonterminal in normalized.nonterminals
    }

    def step(nonterminal, values, visit):
        accumulated = values[nonterminal]
        for production in normalized.productions_of(nonterminal):
            result = abstraction.transfer(
                production, [values[arg] for arg in production.args], examples
            )
            accumulated = abstraction.join(accumulated, result)
        if visit > widening_delay:
            accumulated = abstraction.widen(values[nonterminal], accumulated)
        return accumulated

    keys = list(normalized.nonterminals)
    start_time = time.monotonic()
    try:
        if strategy == DENSE:
            values, stats = solve_dense(
                keys, initial, step, abstraction.equal, max_iterations=max_iterations
            )
        else:
            dependencies = {
                nt: [
                    argument
                    for production in normalized.productions_of(nt)
                    for argument in production.args
                ]
                for nt in keys
            }
            values, stats = solve_worklist(
                keys,
                initial,
                step,
                abstraction.equal,
                invert_dependencies(dependencies),
                max_visits=max_iterations,
            )
    except FixpointDivergenceError as error:
        raise SolverLimitError("abstract fixpoint iteration did not converge") from error
    elapsed = time.monotonic() - start_time
    if report is not None:
        values = report.expand_values(values)
    return AbstractSolution(
        values[normalized.start],
        values,
        stats.iterations,
        elapsed,
        stats.evaluations,
        domain=abstraction.name,
        prune_report=report,
    )


def check_examples_abstract(
    problem: SyGuSProblem,
    examples: ExampleSet,
    strategy: str = WORKLIST,
    domain: DomainLike = DEFAULT_DOMAIN,
    prune: str = "off",
) -> CheckResult:
    """Alg. 1 with an approximate domain: sound ``UNREALIZABLE`` answers.

    ``REALIZABLE`` (on the given examples) is only ever returned by domains
    that certify exactness for the whole solve (the powerset domain below
    its cap); inexact domains answer ``UNKNOWN`` instead.
    """
    abstraction = resolve_domain(domain)
    if len(examples) == 0:
        productive = productive_nonterminals(problem.grammar)
        if problem.grammar.start in productive:
            return CheckResult(verdict=Verdict.UNKNOWN, examples=examples)
        return CheckResult(
            verdict=Verdict.UNREALIZABLE,
            examples=examples,
            certificate=build_unproductive_certificate(problem),
        )
    early = abstraction.pre_check(examples)
    if early is not None:
        return early
    solution = solve_abstract_gfa(
        problem.grammar, examples, strategy=strategy, domain=abstraction, prune=prune
    )
    result = abstraction.check(solution.start_value, problem.spec, examples)
    if result.verdict == Verdict.UNREALIZABLE:
        result.certificate = build_abstract_certificate(
            problem, examples, solution.values, abstraction
        )
    result.details["iterations"] = solution.iterations
    result.details["gfa_seconds"] = solution.solve_seconds
    result.details["gfa_evaluations"] = solution.evaluations
    result.details["domain"] = abstraction.name
    if solution.prune_report is not None:
        result.details["grammar_stats"] = solution.prune_report.counters()
    return result


def _equal(left: object, right: object) -> bool:
    """Backward-compatible equality over the default numeric domain's values.

    Kept for the fixpoint tests that cross-check strategies; new code should
    use the domain's own ``equal``.
    """
    from repro.domains.product import NumericProductDomain

    return NumericProductDomain().equal(left, right)
