"""The approximate instantiation of the framework (§4.3).

The paper's generic recipe for arbitrary SyGuS problems is: pick any abstract
domain, solve the GFA equations with Kleene iteration (adding a widening
operator when the domain has infinite ascending chains), and run Alg. 1's
final check.  The result is sound but incomplete — ``UNREALIZABLE`` answers
are trustworthy, everything else is ``UNKNOWN``.

This module instantiates that recipe with the reduced product of intervals
and congruences per example component (:mod:`repro.domains.numeric`) for
integer nonterminals and exact Boolean-vector sets for Boolean nonterminals.
It is the engine behind the NayHorn and NOPE substitutes
(:mod:`repro.baselines`): Spacer-style constrained-Horn-clause solving is not
available offline, and DESIGN.md documents this substitution.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Union

from repro.domains.boolvectors import BoolVectorSet
from repro.domains.numeric import Interval, Congruence, ProductValue
from repro.engine.cache import get_cache
from repro.gfa.fixpoint import (
    DENSE,
    WORKLIST,
    FixpointDivergenceError,
    check_strategy,
    invert_dependencies,
    solve_dense,
    solve_worklist,
)
from repro.grammar.alphabet import Sort
from repro.grammar.analysis import productive_nonterminals
from repro.grammar.rtg import Nonterminal, Production, RegularTreeGrammar
from repro.semantics.examples import ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.unreal.check import check_unrealizable
from repro.unreal.result import CheckResult, Verdict
from repro.utils.errors import SemanticsError, SolverLimitError
from repro.utils.vectors import BoolVector, IntVector

AbstractValue = Union[ProductValue, BoolVectorSet]


@dataclass
class AbstractSolution:
    """Fixpoint of the approximate GFA problem."""

    start_value: ProductValue
    values: Dict[Nonterminal, AbstractValue]
    iterations: int
    solve_seconds: float
    evaluations: int = 0


def solve_abstract_gfa(
    grammar: RegularTreeGrammar,
    examples: ExampleSet,
    widening_delay: int = 6,
    max_iterations: int = 500,
    strategy: str = WORKLIST,
) -> AbstractSolution:
    """Chaotic iteration with widening over the product domain.

    The default worklist strategy only re-evaluates a nonterminal when one of
    the nonterminals its productions mention changed; ``"dense"`` sweeps every
    nonterminal every round (debug fallback / perf baseline).
    """
    check_strategy(strategy)
    normalized = get_cache().normalized(grammar)
    dimension = len(examples)
    initial: Dict[Nonterminal, AbstractValue] = {}
    for nonterminal in normalized.nonterminals:
        if nonterminal.sort == Sort.BOOL:
            initial[nonterminal] = BoolVectorSet.empty(dimension)
        else:
            initial[nonterminal] = ProductValue.bottom(dimension)

    def step(nonterminal, values, visit):
        accumulated = values[nonterminal]
        for production in normalized.productions_of(nonterminal):
            result = _apply_production(production, values, examples)
            accumulated = _join(accumulated, result)
        if visit > widening_delay and isinstance(accumulated, ProductValue):
            accumulated = values[nonterminal].widen(accumulated)  # type: ignore[union-attr]
        return accumulated

    keys = list(normalized.nonterminals)
    start_time = time.monotonic()
    try:
        if strategy == DENSE:
            values, stats = solve_dense(
                keys, initial, step, _equal, max_iterations=max_iterations
            )
        else:
            dependencies = {
                nt: [
                    argument
                    for production in normalized.productions_of(nt)
                    for argument in production.args
                ]
                for nt in keys
            }
            values, stats = solve_worklist(
                keys,
                initial,
                step,
                _equal,
                invert_dependencies(dependencies),
                max_visits=max_iterations,
            )
    except FixpointDivergenceError as error:
        raise SolverLimitError("abstract fixpoint iteration did not converge") from error
    elapsed = time.monotonic() - start_time
    start_value = values[normalized.start]
    if not isinstance(start_value, ProductValue):
        raise SemanticsError("the start nonterminal must be integer-sorted")
    return AbstractSolution(
        start_value, values, stats.iterations, elapsed, stats.evaluations
    )


def check_examples_abstract(
    problem: SyGuSProblem,
    examples: ExampleSet,
    strategy: str = WORKLIST,
) -> CheckResult:
    """Alg. 1 with the approximate domain: sound, never claims REALIZABLE."""
    if len(examples) == 0:
        productive = productive_nonterminals(problem.grammar)
        verdict = (
            Verdict.UNKNOWN
            if problem.grammar.start in productive
            else Verdict.UNREALIZABLE
        )
        return CheckResult(verdict=verdict, examples=examples)
    solution = solve_abstract_gfa(problem.grammar, examples, strategy=strategy)
    result = check_unrealizable(
        solution.start_value,
        problem.spec,
        examples,
        exact=False,
    )
    result.details["iterations"] = solution.iterations
    result.details["gfa_seconds"] = solution.solve_seconds
    result.details["gfa_evaluations"] = solution.evaluations
    return result


# ---------------------------------------------------------------------------
# Abstract transformers over the product domain
# ---------------------------------------------------------------------------


def _apply_production(
    production: Production,
    values: Dict[Nonterminal, AbstractValue],
    examples: ExampleSet,
) -> AbstractValue:
    name = production.symbol.name
    payload = production.symbol.payload
    dimension = len(examples)
    args = [values[arg] for arg in production.args]

    if name == "Num":
        return ProductValue.constant(IntVector.constant(int(payload), dimension))
    if name == "Var":
        return ProductValue.constant(examples.projection(str(payload)))
    if name == "NegVar":
        return ProductValue.constant(-examples.projection(str(payload)))
    if name == "BoolConst":
        return BoolVectorSet.singleton(BoolVector.constant(bool(payload), dimension))
    if name == "Pass":
        return args[0]
    if name == "Plus":
        result = args[0]
        for arg in args[1:]:
            result = result.add(arg)  # type: ignore[union-attr]
        return result
    if name == "IfThenElse":
        guards, then_value, else_value = args
        assert isinstance(guards, BoolVectorSet)
        assert isinstance(then_value, ProductValue) and isinstance(else_value, ProductValue)
        result = ProductValue.bottom(dimension)
        for guard in guards:
            result = result.join(then_value.select(guard, else_value))
        return result
    if name == "And":
        return args[0].conjoin(args[1])  # type: ignore[union-attr]
    if name == "Or":
        return args[0].disjoin(args[1])  # type: ignore[union-attr]
    if name == "Not":
        return args[0].negate()  # type: ignore[union-attr]
    if name in ("LessThan", "LessEq", "GreaterThan", "GreaterEq", "Equal"):
        left, right = args
        assert isinstance(left, ProductValue) and isinstance(right, ProductValue)
        return _abstract_comparison(name, left, right, dimension)
    raise SemanticsError(f"no approximate transformer for operator {name}")


def _abstract_comparison(
    name: str, left: ProductValue, right: ProductValue, dimension: int
) -> BoolVectorSet:
    """Which truth-value vectors can the comparison take?  (interval reasoning)"""
    if left.is_empty() or right.is_empty():
        return BoolVectorSet.empty(dimension)
    per_component = []
    for index in range(dimension):
        per_component.append(
            _component_truth_values(
                name, left.intervals[index], right.intervals[index]
            )
        )
    vectors = [BoolVector(())] if dimension == 0 else None
    results = [[]]
    for component in per_component:
        results = [prefix + [value] for prefix in results for value in component]
    return BoolVectorSet([BoolVector(bits) for bits in results], dimension)


def _component_truth_values(name: str, left: Interval, right: Interval) -> list:
    """Possible truth values of ``left <cmp> right`` from interval bounds."""
    def lower(interval: Interval) -> float:
        return float("-inf") if interval.low is None else interval.low

    def upper(interval: Interval) -> float:
        return float("inf") if interval.high is None else interval.high

    outcomes = set()
    if name == "LessThan":
        if lower(left) < upper(right):
            outcomes.add(True)
        if upper(left) >= lower(right):
            outcomes.add(False)
    elif name == "LessEq":
        if lower(left) <= upper(right):
            outcomes.add(True)
        if upper(left) > lower(right):
            outcomes.add(False)
    elif name == "GreaterThan":
        if upper(left) > lower(right):
            outcomes.add(True)
        if lower(left) <= upper(right):
            outcomes.add(False)
    elif name == "GreaterEq":
        if upper(left) >= lower(right):
            outcomes.add(True)
        if lower(left) < upper(right):
            outcomes.add(False)
    else:  # Equal
        if lower(left) <= upper(right) and lower(right) <= upper(left):
            outcomes.add(True)
        if not (
            lower(left) == upper(left) == lower(right) == upper(right)
        ):
            outcomes.add(False)
    return sorted(outcomes)


def _join(left: AbstractValue, right: AbstractValue) -> AbstractValue:
    if isinstance(left, ProductValue) and isinstance(right, ProductValue):
        return left.join(right)
    if isinstance(left, BoolVectorSet) and isinstance(right, BoolVectorSet):
        return left.combine(right)
    raise SemanticsError("cannot join values of different sorts")


def _equal(left: AbstractValue, right: AbstractValue) -> bool:
    if isinstance(left, ProductValue) and isinstance(right, ProductValue):
        return left.leq(right) and right.leq(left)
    return left == right
