"""Algorithm 2: NAY's CEGIS loop with random examples.

The paper runs two threads: ESolver searching for a solution over the
example set ``E``, and the GFA-based unrealizability check over ``E`` plus a
growing set of random temporary examples ``Er``.  This reproduction runs the
same two activities round-robin in a single thread (the environment is
single-process), preserving the algorithm's logic:

* the unrealizability check uses ``E ∪ Er`` (sound by Lem. 3.5: if the
  problem restricted to any finite example set is unrealizable, so is the
  original problem);
* the synthesizer only ever uses ``E``;
* a verified candidate ends the loop with ``REALIZABLE``; a counterexample
  from the verifier is added to ``E``;
* when the check says "realizable on the current examples" but the
  synthesizer has not produced a candidate, a fresh random example is added
  to ``Er`` (Alg. 2 lines 17-18).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.semantics.examples import Example, ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.synth.enumerator import EnumerativeSynthesizer
from repro.synth.verifier import Verifier
from repro.unreal.approximate import check_examples_abstract
from repro.unreal.clia import check_clia_examples
from repro.unreal.lia import check_lia_examples
from repro.unreal.result import CegisResult, CheckResult, Verdict
from repro.utils.errors import SolverLimitError
from repro.utils.timing import Stopwatch


#: Signature of an injected unrealizability checker (Alg. 2's "thread 2").
Checker = Callable[[SyGuSProblem, ExampleSet], CheckResult]


@dataclass
class NayConfig:
    """Tuning knobs of the CEGIS loop (defaults follow §7/§8)."""

    mode: str = "sl"  # "sl" = exact semi-linear sets, "horn" = approximate
    seed: Optional[int] = None
    example_low: int = -50
    example_high: int = 50
    max_iterations: int = 40
    max_random_examples: int = 6
    timeout_seconds: Optional[float] = None
    synthesizer_max_size: int = 10
    synthesizer_max_terms: int = 50_000
    stratify: bool = True
    #: Grammar reduction applied before equation building: ``"off"``,
    #: ``"reduce"`` (language-preserving merge of equal nonterminals) or
    #: ``"oe"`` (observational-equivalence merge on the current example set).
    prune: str = "off"
    #: When set, replaces the mode-based checker dispatch entirely.  This is
    #: how NOPE runs the CEGIS loop with its program-reachability encoding:
    #: the engine passes ``checker=self.check`` instead of assigning over the
    #: solver's ``check_examples`` method.
    checker: Optional[Checker] = None


class NaySolver:
    """The top-level NAY tool: returns two-sided answers or times out (§7)."""

    def __init__(self, config: Optional[NayConfig] = None):
        self.config = config or NayConfig()
        self.synthesizer = EnumerativeSynthesizer(
            max_size=self.config.synthesizer_max_size,
            max_terms=self.config.synthesizer_max_terms,
        )
        self.verifier = Verifier()

    # -- example-level check (Alg. 1 dispatch) --------------------------------

    def check_examples(
        self, problem: SyGuSProblem, examples: ExampleSet
    ) -> CheckResult:
        """Dispatch to the injected, LIA, CLIA or approximate checker."""
        if self.config.checker is not None:
            return self.config.checker(problem, examples)
        if self.config.mode in ("horn", "abstract"):
            return check_examples_abstract(problem, examples, prune=self.config.prune)
        if problem.grammar.is_lia() or problem.grammar.is_lia_plus():
            return check_lia_examples(
                problem,
                examples,
                stratify=self.config.stratify,
                prune=self.config.prune,
            )
        return check_clia_examples(
            problem, examples, stratify=self.config.stratify, prune=self.config.prune
        )

    # -- the CEGIS loop (Alg. 2) ----------------------------------------------

    def solve(
        self,
        problem: SyGuSProblem,
        initial_examples: Optional[ExampleSet] = None,
    ) -> CegisResult:
        config = self.config
        rng = random.Random(config.seed)
        stopwatch = Stopwatch(config.timeout_seconds)

        if initial_examples is not None and len(initial_examples) > 0:
            examples = initial_examples
        else:
            examples = ExampleSet.random(
                problem.variables, 1, rng, config.example_low, config.example_high
            )
        random_examples = ExampleSet()

        #: Cumulative enumerator OE-dedup count across rounds, surfaced as
        #: the ``enumerator_candidates_deduped`` solver stat.
        deduped = 0
        iterations = 0
        for iterations in range(1, config.max_iterations + 1):
            if stopwatch.expired():
                return self._timeout(examples, iterations, stopwatch, deduped)

            # Thread 2 of Alg. 2: the unrealizability check on E ∪ Er.
            check_set = examples.union(random_examples)
            try:
                check = self.check_examples(problem, check_set)
            except SolverLimitError:
                return self._timeout(examples, iterations, stopwatch, deduped)
            if check.verdict == Verdict.UNREALIZABLE:
                grammar_stats = dict(check.details.pop("grammar_stats", None) or {})
                grammar_stats["enumerator_candidates_deduped"] = deduped
                return CegisResult(
                    verdict=Verdict.UNREALIZABLE,
                    examples=check_set,
                    iterations=iterations,
                    elapsed_seconds=stopwatch.elapsed(),
                    num_examples=len(check_set),
                    details={"check": check.details, "grammar_stats": grammar_stats},
                    certificate=check.certificate,
                )

            # Thread 1 of Alg. 2: enumerative synthesis on E only.
            outcome = self.synthesizer.synthesize(problem, examples)
            if isinstance(outcome.details, dict):
                # "deduped" is the per-call delta (cached rounds report 0).
                deduped += int(outcome.details.get("deduped", 0) or 0)
            if outcome.found:
                verification = self.verifier.verify(problem, outcome.solution)
                if verification.is_valid:
                    return CegisResult(
                        verdict=Verdict.REALIZABLE,
                        examples=examples,
                        solution=outcome.solution,
                        iterations=iterations,
                        elapsed_seconds=stopwatch.elapsed(),
                        num_examples=len(examples),
                        details={
                            "grammar_stats": {
                                "enumerator_candidates_deduped": deduped
                            }
                        },
                    )
                examples = examples.extended(verification.counterexample)
                continue

            # The check says realizable/unknown on the current examples and the
            # synthesizer ran out of budget: add a random temporary example.
            if len(random_examples) >= config.max_random_examples:
                return self._timeout(examples, iterations, stopwatch, deduped)
            random_examples = random_examples.union(
                ExampleSet.random(
                    problem.variables, 1, rng, config.example_low, config.example_high
                )
            )

        return self._timeout(examples, iterations, stopwatch, deduped)

    def _timeout(
        self,
        examples: ExampleSet,
        iterations: int,
        stopwatch: Stopwatch,
        deduped: int = 0,
    ) -> CegisResult:
        return CegisResult(
            verdict=Verdict.TIMEOUT,
            examples=examples,
            iterations=iterations,
            elapsed_seconds=stopwatch.elapsed(),
            num_examples=len(examples),
            details={
                "grammar_stats": {"enumerator_candidates_deduped": deduped}
            },
        )
