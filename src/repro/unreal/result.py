"""Verdict and result types returned by the unrealizability checkers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.grammar.terms import Term
from repro.semantics.examples import ExampleSet


class Verdict(enum.Enum):
    """The three-valued answer of Alg. 1.

    ``UNREALIZABLE`` and ``REALIZABLE`` are definitive for exact abstractions
    (Thm. 4.5(2)); approximate abstractions can only ever return
    ``UNREALIZABLE`` or ``UNKNOWN`` (Thm. 4.5(1)).
    """

    UNREALIZABLE = "unrealizable"
    REALIZABLE = "realizable"
    UNKNOWN = "unknown"
    TIMEOUT = "timeout"


@dataclass
class CheckResult:
    """Outcome of one unrealizability check over a fixed example set."""

    verdict: Verdict
    examples: ExampleSet
    elapsed_seconds: float = 0.0
    abstraction_size: int = 0
    details: Dict[str, object] = field(default_factory=dict)
    #: A self-contained proof payload for ``UNREALIZABLE`` verdicts, checkable
    #: by :mod:`repro.analysis.certcheck` without re-running any engine.
    #: ``None`` when the verdict is not unrealizable or no certificate could
    #: be constructed (certificates are best-effort, verdicts are not).
    certificate: Optional[Dict[str, object]] = None

    @property
    def is_unrealizable(self) -> bool:
        return self.verdict == Verdict.UNREALIZABLE


@dataclass
class CegisResult:
    """Outcome of the full CEGIS loop (Alg. 2).

    ``solution`` is populated when the problem is realizable and the
    enumerative synthesizer found a witness term; ``examples`` is the final
    example set (the one that proves unrealizability, when applicable).
    """

    verdict: Verdict
    examples: ExampleSet
    solution: Optional[Term] = None
    iterations: int = 0
    elapsed_seconds: float = 0.0
    num_examples: int = 0
    details: Dict[str, object] = field(default_factory=dict)
    #: Forwarded from the final :class:`CheckResult` on unrealizable runs.
    certificate: Optional[Dict[str, object]] = None

    @property
    def is_unrealizable(self) -> bool:
        return self.verdict == Verdict.UNREALIZABLE
