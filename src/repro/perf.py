"""The repeatable fixpoint perf harness behind ``repro-nay bench``.

Every workload is measured for both fixpoint strategies (``worklist`` vs
``dense``, see :mod:`repro.gfa.fixpoint`) *in the same run*, so the recorded
speedups compare like with like on the same machine and interpreter state.
The result is a versioned ``BENCH_fixpoint.json`` artifact — medians,
iteration counts, and equations-evaluated counters per workload — giving
future changes a perf trajectory to compare against (see DESIGN.md).

Workload groups:

* ``kleene``  — pure solver microbenchmark: Kleene iteration on synthetic
  chain systems over the Boolean semiring (the worst case for dense
  iteration: information flows one edge per round);
* ``fig2``    — the paper's Fig. 2 scaling workload: exact semi-linear-set
  solving (stratified Newton) of chain grammars, |N| x |E| sweep;
* ``fig3``    — the Fig. 3/5 scaling workload: the approximate product-domain
  engine on the same chain grammars;
* ``semilinear`` — micro-operations of the semi-linear domain (combine /
  extend / star / simplify);
* ``solve``   — end-to-end ``Solver.solve`` through the public api facade on
  a scaling benchmark (worklist strategy only; the facade always runs the
  default strategy).

Fairness: the process-wide memo tables (GFA cache, simplification memos) are
cleared before *every* timed repetition, so neither strategy warms the cache
for the other.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import clear_cache, runtime_cache_stats
from repro.gfa.equations import EquationSystem, Monomial, Polynomial
from repro.gfa.fixpoint import DENSE, STRATEGIES, WORKLIST, FixpointStats
from repro.gfa.kleene import solve_kleene
from repro.gfa.semiring import BooleanSemiring, SemiLinearSemiring
from repro.gfa.stratify import equation_strata
from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.unreal.approximate import solve_abstract_gfa
from repro.unreal.lia import solve_lia_gfa
from repro.suites.scaling import chain_grammar, example_set, scaling_benchmark
from repro.utils.vectors import IntVector

#: Version of the BENCH_fixpoint.json schema.
BENCH_SCHEMA_VERSION = 1

#: Default artifact path (repo root when run from a checkout).
DEFAULT_BENCH_PATH = "BENCH_fixpoint.json"


# ---------------------------------------------------------------------------
# Workload definitions
# ---------------------------------------------------------------------------


def chain_boolean_system(length: int) -> EquationSystem:
    """``X_0 = X_1, ..., X_{n-1} = X_n, X_n = 1`` plus a self-loop on X_0.

    A dense solver needs ~n rounds of n evaluations to push ``true`` down the
    chain; a worklist solver needs ~2n evaluations total.
    """
    equations = {}
    for index in range(length):
        equations[f"X{index}"] = Polynomial((Monomial(True, (f"X{index + 1}",)),))
    equations[f"X{length}"] = Polynomial((Monomial(True, ()),))
    # Make X0 self-recursive so the system is not a simple DAG.
    equations["X0"] = Polynomial(
        (Monomial(True, ("X1",)), Monomial(True, ("X0", "X1")))
    )
    return EquationSystem(equations)


def _run_kleene(length: int, strategy: str) -> FixpointStats:
    system = chain_boolean_system(length)
    solution = solve_kleene(system, BooleanSemiring(), strategy=strategy)
    assert solution["X0"] is True  # sanity: the chain must saturate
    return solution.stats


#: Extra fig2 measurement leg: dense Jacobian but stratification kept on.
#: Stratification (§7) pre-dates the worklist work, so the report records it
#: as its own axis — ``dense`` is the historical full-system solve (single
#: stratum + dense Jacobian), ``dense_stratified`` isolates the pure
#: Jacobian-strategy effect, and the headline speedup is worklist vs dense.
DENSE_STRATIFIED = "dense_stratified"


def _run_fig2(nonterminals: int, examples: int, strategy: str) -> FixpointStats:
    entry = scaling_benchmark(nonterminals)
    if strategy == DENSE:
        stratify, solver_strategy = False, DENSE
    elif strategy == DENSE_STRATIFIED:
        stratify, solver_strategy = True, DENSE
    else:
        stratify, solver_strategy = True, WORKLIST
    solution = solve_lia_gfa(
        entry.problem.grammar,
        example_set(examples),
        stratify=stratify,
        strategy=solver_strategy,
    )
    assert not solution.start_value.is_empty()
    return FixpointStats(strategy, solution.iterations, solution.evaluations)


def _run_fig3(nonterminals: int, examples: int, strategy: str) -> FixpointStats:
    grammar = chain_grammar(max(1, nonterminals - 2))
    solution = solve_abstract_gfa(grammar, example_set(examples), strategy=strategy)
    return FixpointStats(strategy, solution.iterations, solution.evaluations)


def _semilinear_inputs(count: int, dimension: int = 2) -> List[SemiLinearSet]:
    values = []
    for index in range(count):
        offset = IntVector([index % 5, (2 * index) % 7])
        generators = (
            IntVector([1 + index % 3, index % 4]),
            IntVector([index % 2, 1 + index % 5]),
        )
        values.append(SemiLinearSet([LinearSet(offset, generators)], dimension))
    return values


def _run_semilinear(count: int, strategy: str) -> FixpointStats:
    """Micro: fold combine/extend/star/simplify over generated sets.

    The strategy knob is meaningless for pure domain operations; both legs run
    the identical loop so that the recorded "speedup" reflects the memoized
    simplification path (cleared before each repetition) staying at 1x-ish.
    """
    del strategy
    values = _semilinear_inputs(count)
    accumulated = SemiLinearSet.empty(2)
    operations = 0
    for value in values:
        accumulated = accumulated.combine(value).simplify()
        operations += 2
    product = values[0]
    for value in values[1:]:
        product = product.extend(value).simplify()
        operations += 2
    star = accumulated.star()
    operations += 1
    assert star.linear_sets
    return FixpointStats(WORKLIST, 1, operations)


class Workload:
    """One named, parameterised measurement."""

    def __init__(
        self,
        name: str,
        group: str,
        run: Callable[[str], FixpointStats],
        strategies: Sequence[str] = STRATEGIES,
    ):
        self.name = name
        self.group = group
        self.run = run
        self.strategies = tuple(strategies)


def _solver_workload() -> Workload:
    from repro.api import Solver

    def run(strategy: str) -> FixpointStats:
        del strategy
        solver = Solver(engine="naySL", timeout_seconds=120.0)
        response = solver.solve("chain_14")
        assert response.error is None, response.error
        return FixpointStats(WORKLIST, 0, 0)

    return Workload("solve_end_to_end_chain14", "solve", run, strategies=(WORKLIST,))


def default_workloads(quick: bool = False) -> List[Workload]:
    """The standard suite; ``quick`` shrinks the sweep for CI smoke runs."""
    kleene_sizes = [64] if quick else [64, 256, 1024]
    fig2_points = [(14, 1)] if quick else [(14, 1), (20, 1), (26, 1), (14, 2), (20, 2)]
    fig3_points = [(14, 2)] if quick else [(14, 2), (20, 2), (26, 2), (14, 3), (20, 3)]
    micro_sizes = [16] if quick else [16, 48]

    workloads: List[Workload] = []
    for size in kleene_sizes:
        workloads.append(
            Workload(
                f"kleene_bool_chain_{size}",
                "kleene",
                lambda strategy, size=size: _run_kleene(size, strategy),
            )
        )
    for nonterminals, examples in fig2_points:
        workloads.append(
            Workload(
                f"fig2_newton_n{nonterminals}_e{examples}",
                "fig2",
                lambda strategy, n=nonterminals, e=examples: _run_fig2(n, e, strategy),
                strategies=(WORKLIST, DENSE, DENSE_STRATIFIED),
            )
        )
    for nonterminals, examples in fig3_points:
        workloads.append(
            Workload(
                f"fig3_abstract_n{nonterminals}_e{examples}",
                "fig3",
                lambda strategy, n=nonterminals, e=examples: _run_fig3(n, e, strategy),
            )
        )
    for size in micro_sizes:
        workloads.append(
            Workload(
                f"semilinear_micro_{size}",
                "semilinear",
                lambda strategy, size=size: _run_semilinear(size, strategy),
                strategies=(WORKLIST,),
            )
        )
    workloads.append(_solver_workload())
    return workloads


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _measure(
    run: Callable[[str], FixpointStats], strategy: str, repetitions: int
) -> Dict[str, object]:
    seconds: List[float] = []
    stats = FixpointStats(strategy)
    for _ in range(repetitions):
        clear_cache()  # no strategy may warm the memo tables for the other
        started = time.perf_counter()
        stats = run(strategy)
        seconds.append(time.perf_counter() - started)
    return {
        "median_seconds": statistics.median(seconds),
        "min_seconds": min(seconds),
        "repetitions": repetitions,
        "iterations": stats.iterations,
        "evaluations": stats.evaluations,
    }


def run_perf_suite(
    repetitions: int = 3,
    quick: bool = False,
    workloads: Optional[Sequence[Workload]] = None,
) -> Dict[str, object]:
    """Run every workload under every strategy; return the report dict."""
    chosen = list(workloads) if workloads is not None else default_workloads(quick)
    rows: List[Dict[str, object]] = []
    for workload in chosen:
        row: Dict[str, object] = {"name": workload.name, "group": workload.group}
        for strategy in workload.strategies:
            row[strategy] = _measure(workload.run, strategy, repetitions)
        if WORKLIST in row and DENSE in row:
            worklist_seconds = row[WORKLIST]["median_seconds"]
            dense_seconds = row[DENSE]["median_seconds"]
            row["speedup"] = (
                dense_seconds / worklist_seconds if worklist_seconds > 0 else None
            )
            worklist_evals = row[WORKLIST]["evaluations"]
            dense_evals = row[DENSE]["evaluations"]
            row["evaluation_ratio"] = (
                dense_evals / worklist_evals if worklist_evals else None
            )
        rows.append(row)

    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "fixpoint",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "workloads": rows,
        "summary": _summarise(rows),
        "caches": runtime_cache_stats(),
    }
    return report


def _summarise(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    summary: Dict[str, object] = {}
    for group in ("kleene", "fig2", "fig3"):
        speedups = [
            row["speedup"]
            for row in rows
            if row["group"] == group and row.get("speedup") is not None
        ]
        ratios = [
            row["evaluation_ratio"]
            for row in rows
            if row["group"] == group and row.get("evaluation_ratio") is not None
        ]
        if speedups:
            summary[f"{group}_min_speedup"] = min(speedups)
            summary[f"{group}_median_speedup"] = statistics.median(speedups)
        if ratios:
            summary[f"{group}_max_evaluation_ratio"] = max(ratios)
    return summary


def render_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the report."""
    lines = [
        f"{'workload':32s} {'worklist':>10s} {'dense':>10s} {'speedup':>8s} "
        f"{'evals(w)':>9s} {'evals(d)':>9s}"
    ]
    for row in report["workloads"]:
        worklist = row.get(WORKLIST, {})
        dense = row.get(DENSE, {})

        def fmt_seconds(cell):
            return f"{cell['median_seconds']:.4f}" if cell else "-"

        speedup = row.get("speedup")
        lines.append(
            f"{row['name']:32s} {fmt_seconds(worklist):>10s} {fmt_seconds(dense):>10s} "
            f"{(f'{speedup:.1f}x' if speedup else '-'):>8s} "
            f"{(str(worklist.get('evaluations', '-')) if worklist else '-'):>9s} "
            f"{(str(dense.get('evaluations', '-')) if dense else '-'):>9s}"
        )
    for key, value in sorted(report["summary"].items()):
        lines.append(f"  {key}: {value:.2f}")
    return "\n".join(lines)


def write_report(report: Dict[str, object], path: str | Path) -> Path:
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target
