"""The repeatable perf harnesses behind ``repro-nay bench``.

Four suites live here, selected with ``--suite``:

* ``fixpoint`` (default) — every workload measured for both fixpoint
  strategies (``worklist`` vs ``dense``, see :mod:`repro.gfa.fixpoint`)
  *in the same run*, written to ``BENCH_fixpoint.json``;
* ``logic`` — the DPLL(T) core harness: records the **query streams of real
  workloads** (the fig2 exact-Newton sweep, Table 1/2 benchmark checks) via
  :func:`repro.logic.solver.record_queries` and replays each stream through
  the incremental solver *and* the preserved pre-rewrite baseline
  (:mod:`repro.logic.reference`) in the same run, writing queries/sec,
  simplex pivots, lemma hits and cache hits to ``BENCH_logic.json``.
  Verdict agreement between the two stacks is asserted before timing.
* ``domains`` — the columnar evaluation core harness: an example-count
  sweep (|E| = 10 → 5000) over the batched-evaluation hot paths, each
  measured through up to three legs in the same run — ``reference`` (the
  frozen pre-columnar twins in :mod:`repro.semantics.reference` and
  :mod:`repro.domains.reference`), ``python`` (the columnar code on the
  pure-Python backend) and ``numpy`` (the same code on the numpy backend,
  absent when numpy is not installed).  Result agreement across legs is
  asserted before timing; ``examples_per_sec`` and leg-vs-leg speedups go
  to ``BENCH_domains.json``.
* ``chaos`` — the resilience sweep over the supervised solve fabric
  (:mod:`repro.engine.supervisor`): a slate of fault-injected requests
  (crash, hang, slow, corrupt, oom, error — plus a real ``kill -9`` of a
  busy worker mid-solve) driven through :meth:`Supervisor.solve`, asserting
  that every request comes back as a well-formed
  :class:`~repro.api.wire.SolveResponse`, that the pool self-heals (clean
  requests succeed on replaced workers afterwards), and that a tripped
  circuit breaker recovers through its half-open probe.  Retries, worker
  replacements, breaker trips and injected-fault counts go to
  ``BENCH_chaos.json``.

Both artifacts are versioned; medians are compared like with like on the
same machine and interpreter state, giving future changes a perf trajectory
to compare against (see DESIGN.md).

Fixpoint workload groups:

* ``kleene``  — pure solver microbenchmark: Kleene iteration on synthetic
  chain systems over the Boolean semiring (the worst case for dense
  iteration: information flows one edge per round);
* ``fig2``    — the paper's Fig. 2 scaling workload: exact semi-linear-set
  solving (stratified Newton) of chain grammars, |N| x |E| sweep;
* ``fig3``    — the Fig. 3/5 scaling workload: the approximate product-domain
  engine on the same chain grammars;
* ``semilinear`` — micro-operations of the semi-linear domain (combine /
  extend / star / simplify);
* ``solve``   — end-to-end ``Solver.solve`` through the public api facade on
  a scaling benchmark (worklist strategy only; the facade always runs the
  default strategy);
* ``domains`` — the pluggable domain engines (``nayInt``, ``nayFin``) and
  the ``staged`` strategy checking a fixed benchmark slate through the api
  facade (worklist only).  The ``evaluations`` column records how many of
  the slate's instances the engine decided, so a precision regression in a
  cheap domain shows up in the artifact next to its timing.

Fairness: the process-wide memo tables (GFA cache, simplification memos) are
cleared before *every* timed repetition, so neither strategy warms the cache
for the other.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import clear_cache, runtime_cache_stats
from repro.engine.registry import create_engine
from repro.gfa.equations import EquationSystem, Monomial, Polynomial
from repro.gfa.fixpoint import DENSE, STRATEGIES, WORKLIST, FixpointStats
from repro.gfa.kleene import solve_kleene
from repro.gfa.semiring import BooleanSemiring, SemiLinearSemiring
from repro.gfa.stratify import equation_strata
from repro.domains.reference import ReferenceIntervalDomain
from repro.domains.registry import create_domain
from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.grammar import alphabet as alph
from repro.grammar.terms import Term
from repro.logic.formulas import Formula
from repro.logic.reference import reference_check_sat
from repro.logic.solver import check_sat, record_queries, runtime_counters
from repro.semantics.evaluator import EvalMemo, evaluate
from repro.semantics.reference import reference_evaluate
from repro.unreal.approximate import check_examples_abstract, solve_abstract_gfa
from repro.unreal.lia import solve_lia_gfa
from repro.suites import get_benchmark
from repro.suites.scaling import (
    chain_grammar,
    example_set,
    large_example_set,
    scaling_benchmark,
)
from repro.utils.columns import NUMPY_OPS, use_backend
from repro.utils.errors import ReproError
from repro.utils.vectors import IntVector

#: Version of the BENCH_fixpoint.json schema.
#:
#: * **2** — added the ``certification`` section: per-engine counts of
#:   unrealizable verdicts whose certificates the independent checker
#:   (:mod:`repro.analysis.certcheck`) accepted, over a fixed slate.
BENCH_SCHEMA_VERSION = 2

#: Version of the BENCH_logic.json schema.
LOGIC_BENCH_SCHEMA_VERSION = 1

#: Version of the BENCH_domains.json schema (see docs/bench-artifacts.md).
DOMAINS_BENCH_SCHEMA_VERSION = 1

#: Version of the BENCH_chaos.json schema (the fault-injection sweep over
#: the solve fabric; see docs/architecture/fabric.md).
CHAOS_BENCH_SCHEMA_VERSION = 1

#: Version of the BENCH_serve.json schema (the concurrent-client load
#: harness over the HTTP server + persistent result store; see
#: docs/bench-artifacts.md).
SERVE_BENCH_SCHEMA_VERSION = 1

#: Default artifact paths (repo root when run from a checkout).
DEFAULT_BENCH_PATH = "BENCH_fixpoint.json"
DEFAULT_LOGIC_BENCH_PATH = "BENCH_logic.json"
DEFAULT_DOMAINS_BENCH_PATH = "BENCH_domains.json"
DEFAULT_CHAOS_BENCH_PATH = "BENCH_chaos.json"
DEFAULT_SERVE_BENCH_PATH = "BENCH_serve.json"


# ---------------------------------------------------------------------------
# Workload definitions
# ---------------------------------------------------------------------------


def chain_boolean_system(length: int) -> EquationSystem:
    """``X_0 = X_1, ..., X_{n-1} = X_n, X_n = 1`` plus a self-loop on X_0.

    A dense solver needs ~n rounds of n evaluations to push ``true`` down the
    chain; a worklist solver needs ~2n evaluations total.
    """
    equations = {}
    for index in range(length):
        equations[f"X{index}"] = Polynomial((Monomial(True, (f"X{index + 1}",)),))
    equations[f"X{length}"] = Polynomial((Monomial(True, ()),))
    # Make X0 self-recursive so the system is not a simple DAG.
    equations["X0"] = Polynomial(
        (Monomial(True, ("X1",)), Monomial(True, ("X0", "X1")))
    )
    return EquationSystem(equations)


def _run_kleene(length: int, strategy: str) -> FixpointStats:
    system = chain_boolean_system(length)
    solution = solve_kleene(system, BooleanSemiring(), strategy=strategy)
    assert solution["X0"] is True  # sanity: the chain must saturate
    return solution.stats


#: Extra fig2 measurement leg: dense Jacobian but stratification kept on.
#: Stratification (§7) pre-dates the worklist work, so the report records it
#: as its own axis — ``dense`` is the historical full-system solve (single
#: stratum + dense Jacobian), ``dense_stratified`` isolates the pure
#: Jacobian-strategy effect, and the headline speedup is worklist vs dense.
DENSE_STRATIFIED = "dense_stratified"


def _run_fig2(nonterminals: int, examples: int, strategy: str) -> FixpointStats:
    entry = scaling_benchmark(nonterminals)
    if strategy == DENSE:
        stratify, solver_strategy = False, DENSE
    elif strategy == DENSE_STRATIFIED:
        stratify, solver_strategy = True, DENSE
    else:
        stratify, solver_strategy = True, WORKLIST
    solution = solve_lia_gfa(
        entry.problem.grammar,
        example_set(examples),
        stratify=stratify,
        strategy=solver_strategy,
    )
    assert not solution.start_value.is_empty()
    return FixpointStats(strategy, solution.iterations, solution.evaluations)


def _run_fig3(nonterminals: int, examples: int, strategy: str) -> FixpointStats:
    grammar = chain_grammar(max(1, nonterminals - 2))
    solution = solve_abstract_gfa(grammar, example_set(examples), strategy=strategy)
    return FixpointStats(strategy, solution.iterations, solution.evaluations)


def _semilinear_inputs(count: int, dimension: int = 2) -> List[SemiLinearSet]:
    values = []
    for index in range(count):
        offset = IntVector([index % 5, (2 * index) % 7])
        generators = (
            IntVector([1 + index % 3, index % 4]),
            IntVector([index % 2, 1 + index % 5]),
        )
        values.append(SemiLinearSet([LinearSet(offset, generators)], dimension))
    return values


def _run_semilinear(count: int, strategy: str) -> FixpointStats:
    """Micro: fold combine/extend/star/simplify over generated sets.

    The strategy knob is meaningless for pure domain operations; both legs run
    the identical loop so that the recorded "speedup" reflects the memoized
    simplification path (cleared before each repetition) staying at 1x-ish.
    """
    del strategy
    values = _semilinear_inputs(count)
    accumulated = SemiLinearSet.empty(2)
    operations = 0
    for value in values:
        accumulated = accumulated.combine(value).simplify()
        operations += 2
    product = values[0]
    for value in values[1:]:
        product = product.extend(value).simplify()
        operations += 2
    star = accumulated.star()
    operations += 1
    assert star.linear_sets
    return FixpointStats(WORKLIST, 1, operations)


class Workload:
    """One named, parameterised measurement."""

    def __init__(
        self,
        name: str,
        group: str,
        run: Callable[[str], FixpointStats],
        strategies: Sequence[str] = STRATEGIES,
    ):
        self.name = name
        self.group = group
        self.run = run
        self.strategies = tuple(strategies)


def _solver_workload() -> Workload:
    from repro.api import Solver

    def run(strategy: str) -> FixpointStats:
        del strategy
        solver = Solver(engine="naySL", timeout_seconds=120.0)
        response = solver.solve("chain_14")
        assert response.error is None, response.error
        return FixpointStats(WORKLIST, 0, 0)

    return Workload("solve_end_to_end_chain14", "solve", run, strategies=(WORKLIST,))


#: Benchmark slate the ``domains`` workloads check (cheap-domain-friendly
#: instances plus one that forces escalation).
DOMAIN_BENCH_SLATE = ("plane1", "guard1", "mpg_guard1", "max2")


def _domain_engine_workload(engine_name: str) -> Workload:
    from repro.api import Solver

    def run(strategy: str) -> FixpointStats:
        del strategy
        solver = Solver(engine=engine_name, timeout_seconds=120.0)
        decided = 0
        for benchmark in DOMAIN_BENCH_SLATE:
            response = solver.check(benchmark)
            assert response.error is None, response.error
            assert response.verdict != "realizable", (
                f"{engine_name} claimed realizable on {benchmark}"
            )
            decided += response.verdict == "unrealizable"
        return FixpointStats(WORKLIST, 0, decided)

    return Workload(
        f"domains_{engine_name}", "domains", run, strategies=(WORKLIST,)
    )


#: Benchmark slate the certification sweep checks: one representative per
#: family the engines disagree on (LIA planes, guarded families, CLIA).
CERT_BENCH_SLATE = ("plane1", "plane2", "guard1", "guard2", "mpg_guard1", "max2")


def _certification_rates(quick: bool = False) -> Dict[str, object]:
    """Per-engine certificate coverage over :data:`CERT_BENCH_SLATE`.

    For every registered engine, check each slate benchmark and count how
    many ``unrealizable`` verdicts shipped a certificate the independent
    checker (:func:`repro.analysis.certcheck.check_certificate`) accepts.
    The rates land in ``BENCH_fixpoint.json`` so a certification regression
    (an engine silently losing its proof emitter) shows up in the bench
    diff, not just in CI's dedicated certcheck job.
    """
    from repro.analysis import check_certificate
    from repro.api import Solver
    from repro.engine.registry import engine_names
    from repro.suites.registry import get_benchmark

    slate = CERT_BENCH_SLATE[:2] if quick else CERT_BENCH_SLATE
    rates: Dict[str, object] = {}
    for engine_name in engine_names():
        solver = Solver(engine=engine_name, timeout_seconds=120.0)
        unrealizable = 0
        certified = 0
        for name in slate:
            benchmark = get_benchmark(name)
            response = solver.check(benchmark)
            assert response.error is None, response.error
            if response.verdict != "unrealizable":
                continue
            unrealizable += 1
            if response.certificate is not None and check_certificate(
                benchmark.problem, response.certificate
            ):
                certified += 1
        rates[engine_name] = {
            "unrealizable": unrealizable,
            "certified": certified,
            "rate": (certified / unrealizable) if unrealizable else None,
        }
    return rates


def default_workloads(quick: bool = False) -> List[Workload]:
    """The standard suite; ``quick`` shrinks the sweep for CI smoke runs."""
    kleene_sizes = [64] if quick else [64, 256, 1024]
    fig2_points = [(14, 1)] if quick else [(14, 1), (20, 1), (26, 1), (14, 2), (20, 2)]
    fig3_points = [(14, 2)] if quick else [(14, 2), (20, 2), (26, 2), (14, 3), (20, 3)]
    micro_sizes = [16] if quick else [16, 48]

    workloads: List[Workload] = []
    for size in kleene_sizes:
        workloads.append(
            Workload(
                f"kleene_bool_chain_{size}",
                "kleene",
                lambda strategy, size=size: _run_kleene(size, strategy),
            )
        )
    for nonterminals, examples in fig2_points:
        workloads.append(
            Workload(
                f"fig2_newton_n{nonterminals}_e{examples}",
                "fig2",
                lambda strategy, n=nonterminals, e=examples: _run_fig2(n, e, strategy),
                strategies=(WORKLIST, DENSE, DENSE_STRATIFIED),
            )
        )
    for nonterminals, examples in fig3_points:
        workloads.append(
            Workload(
                f"fig3_abstract_n{nonterminals}_e{examples}",
                "fig3",
                lambda strategy, n=nonterminals, e=examples: _run_fig3(n, e, strategy),
            )
        )
    for size in micro_sizes:
        workloads.append(
            Workload(
                f"semilinear_micro_{size}",
                "semilinear",
                lambda strategy, size=size: _run_semilinear(size, strategy),
                strategies=(WORKLIST,),
            )
        )
    workloads.append(_solver_workload())
    for engine_name in ("nayInt", "nayFin", "staged"):
        workloads.append(_domain_engine_workload(engine_name))
    return workloads


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _measure(
    run: Callable[[str], FixpointStats], strategy: str, repetitions: int
) -> Dict[str, object]:
    seconds: List[float] = []
    stats = FixpointStats(strategy)
    for _ in range(repetitions):
        clear_cache()  # no strategy may warm the memo tables for the other
        started = time.perf_counter()
        stats = run(strategy)
        seconds.append(time.perf_counter() - started)
    return {
        "median_seconds": statistics.median(seconds),
        "min_seconds": min(seconds),
        "repetitions": repetitions,
        "iterations": stats.iterations,
        "evaluations": stats.evaluations,
    }


def run_perf_suite(
    repetitions: int = 3,
    quick: bool = False,
    workloads: Optional[Sequence[Workload]] = None,
) -> Dict[str, object]:
    """Run every workload under every strategy; return the report dict."""
    chosen = list(workloads) if workloads is not None else default_workloads(quick)
    rows: List[Dict[str, object]] = []
    for workload in chosen:
        row: Dict[str, object] = {"name": workload.name, "group": workload.group}
        for strategy in workload.strategies:
            row[strategy] = _measure(workload.run, strategy, repetitions)
        if WORKLIST in row and DENSE in row:
            worklist_seconds = row[WORKLIST]["median_seconds"]
            dense_seconds = row[DENSE]["median_seconds"]
            row["speedup"] = (
                dense_seconds / worklist_seconds if worklist_seconds > 0 else None
            )
            worklist_evals = row[WORKLIST]["evaluations"]
            dense_evals = row[DENSE]["evaluations"]
            row["evaluation_ratio"] = (
                dense_evals / worklist_evals if worklist_evals else None
            )
        rows.append(row)

    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "fixpoint",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "workloads": rows,
        "summary": _summarise(rows),
        "certification": _certification_rates(quick),
        "caches": runtime_cache_stats(),
    }
    return report


def _summarise(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    summary: Dict[str, object] = {}
    for group in ("kleene", "fig2", "fig3"):
        speedups = [
            row["speedup"]
            for row in rows
            if row["group"] == group and row.get("speedup") is not None
        ]
        ratios = [
            row["evaluation_ratio"]
            for row in rows
            if row["group"] == group and row.get("evaluation_ratio") is not None
        ]
        if speedups:
            summary[f"{group}_min_speedup"] = min(speedups)
            summary[f"{group}_median_speedup"] = statistics.median(speedups)
        if ratios:
            summary[f"{group}_max_evaluation_ratio"] = max(ratios)
    return summary


def render_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the report."""
    lines = [
        f"{'workload':32s} {'worklist':>10s} {'dense':>10s} {'speedup':>8s} "
        f"{'evals(w)':>9s} {'evals(d)':>9s}"
    ]
    for row in report["workloads"]:
        worklist = row.get(WORKLIST, {})
        dense = row.get(DENSE, {})

        def fmt_seconds(cell):
            return f"{cell['median_seconds']:.4f}" if cell else "-"

        speedup = row.get("speedup")
        lines.append(
            f"{row['name']:32s} {fmt_seconds(worklist):>10s} {fmt_seconds(dense):>10s} "
            f"{(f'{speedup:.1f}x' if speedup else '-'):>8s} "
            f"{(str(worklist.get('evaluations', '-')) if worklist else '-'):>9s} "
            f"{(str(dense.get('evaluations', '-')) if dense else '-'):>9s}"
        )
    for key, value in sorted(report["summary"].items()):
        lines.append(f"  {key}: {value:.2f}")
    for engine_name, cell in sorted(report.get("certification", {}).items()):
        rate = cell["rate"]
        lines.append(
            f"  certified[{engine_name}]: {cell['certified']}/{cell['unrealizable']}"
            f" ({'-' if rate is None else f'{rate:.0%}'})"
        )
    return "\n".join(lines)


def write_report(report: Dict[str, object], path: str | Path) -> Path:
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target


# ---------------------------------------------------------------------------
# The logic (DPLL(T) core) suite
# ---------------------------------------------------------------------------
#
# Each workload is a *captured query stream*: the exact sequence of formulas
# a real pipeline run hands to the solver, recorded once (untimed) and then
# replayed through the incremental core and the pre-rewrite reference stack.
# Replaying identical formula sequences is what makes the recorded speedup an
# apples-to-apples measure of the solver rewrite alone.


class LogicWorkload:
    """One named query-stream measurement."""

    def __init__(self, name: str, group: str, capture: Callable[[], List[Formula]]):
        self.name = name
        self.group = group
        self.capture = capture


def _capture_fig2_stream(
    points: Sequence[Tuple[int, int]]
) -> List[Formula]:
    """The solver queries of the fig2 exact-Newton scaling sweep.

    Every cell runs the full stratified Newton solve (subsumption-based
    simplification included), with cold caches per cell exactly like the
    experiment runner; the recorded stream is the concatenation over the
    ``|N| x |E|`` sweep.
    """
    sink: List[Formula] = []
    with record_queries(sink):
        for nonterminals, examples in points:
            clear_cache()
            entry = scaling_benchmark(nonterminals)
            solve_lia_gfa(
                entry.problem.grammar, example_set(examples), stratify=True
            )
    clear_cache()
    return sink


def _capture_check_stream(
    benchmark_name: str, suite: Optional[str] = None
) -> List[Formula]:
    """The solver queries of one exact naySL benchmark check.

    The Table 2 ``array_search`` family is the §7/§8 exact-Newton workload
    whose CLIA verdict extraction dominates solver time; the Table 1
    LimitedIf family exercises the 2^|E| comparison-abstraction queries.
    ``suite`` disambiguates names that appear in several suites (``ite1``
    exists in both LimitedPlus and LimitedIf).
    """
    benchmark = get_benchmark(benchmark_name, suite)
    engine = create_engine("naySL")
    clear_cache()
    sink: List[Formula] = []
    with record_queries(sink):
        engine.check(benchmark.problem, benchmark.witness_examples)
    clear_cache()
    return sink


def _capture_random_stream(count: int, seed: int = 0) -> List[Formula]:
    """Seeded random QF-LIA formulas (small Boolean structure over 3 vars).

    Every formula is *box-bounded* (``-8 <= v <= 8`` conjoined per
    variable): the pre-rewrite baseline's branch-and-bound can take minutes
    on unbounded random strips, and a benchmark that mostly measures one
    pathological query would say nothing about throughput.
    """
    import random

    from repro.logic.formulas import (
        BoolLit,
        atom_eq,
        atom_ge,
        atom_le,
        atom_lt,
        atom_ne,
        conjunction,
        disjunction,
    )
    from repro.logic.terms import LinearExpression

    rng = random.Random(seed)
    names = ["x", "y", "z"]
    makers = (atom_le, atom_lt, atom_eq, atom_ne)
    box = [
        atom
        for name in names
        for atom in (
            atom_ge(LinearExpression.variable(name), -8),
            atom_le(LinearExpression.variable(name), 8),
        )
    ]

    def random_atom() -> Formula:
        expression = LinearExpression(
            {name: rng.randint(-4, 4) for name in names}, rng.randint(-8, 8)
        )
        return rng.choice(makers)(expression, 0)

    formulas: List[Formula] = []
    while len(formulas) < count:
        clauses = [
            disjunction([random_atom() for _ in range(rng.randint(1, 3))])
            for _ in range(rng.randint(1, 4))
        ]
        formula = conjunction(clauses + box)
        if not isinstance(formula, BoolLit):
            formulas.append(formula)
    return formulas


def default_logic_workloads(quick: bool = False) -> List[LogicWorkload]:
    """The standard logic suite; ``quick`` shrinks it for CI smoke runs."""
    fig2_points = (
        [(8, 1), (14, 1), (8, 2), (14, 2), (8, 3), (14, 3)]
        if quick
        else [
            (8, 1), (14, 1), (20, 1), (26, 1), (32, 1),
            (8, 2), (14, 2), (20, 2), (26, 2), (32, 2),
            (8, 3), (14, 3), (20, 3), (26, 3), (32, 3),
        ]
    )
    workloads = [
        LogicWorkload(
            "fig2_newton_subsumption_sweep",
            "fig2",
            lambda points=tuple(fig2_points): _capture_fig2_stream(points),
        ),
        LogicWorkload(
            "random_qflia_200",
            "random",
            lambda: _capture_random_stream(200),
        ),
    ]
    table2 = ["array_search_8"] if quick else ["array_search_10", "array_search_13"]
    for name in table2:
        workloads.append(
            LogicWorkload(
                f"table2_clia_{name}",
                "table2",
                lambda name=name: _capture_check_stream(name),
            )
        )
    if not quick:
        workloads.append(
            LogicWorkload(
                "table1_limited_if_ite1",
                "table1",
                lambda: _capture_check_stream("ite1", suite="LimitedIf"),
            )
        )
    return workloads


#: Stat-counter keys reported per incremental replay.
_LOGIC_STAT_KEYS = (
    "theory_queries",
    "theory_cache_hits",
    "lemma_hits",
    "lemmas_learned",
    "simplex_pivots",
    "bb_nodes",
    "propagations",
    "core_probes",
)


def _replay_incremental(stream: Sequence[Formula]) -> List[bool]:
    return [check_sat(formula).is_sat for formula in stream]


def _replay_reference(stream: Sequence[Formula]) -> List[bool]:
    return [reference_check_sat(formula)[0] for formula in stream]


def _measure_logic_workload(
    workload: LogicWorkload, repetitions: int
) -> Dict[str, object]:
    stream = workload.capture()
    row: Dict[str, object] = {
        "name": workload.name,
        "group": workload.group,
        "queries": len(stream),
    }

    # Differential guard before timing: both stacks must agree on every
    # query, otherwise the bench result would be comparing wrong answers.
    clear_cache()
    if _replay_incremental(stream) != _replay_reference(stream):
        raise ReproError(
            f"solver verdict mismatch replaying workload {workload.name!r}"
        )

    incremental_seconds: List[float] = []
    reference_seconds: List[float] = []
    stats: Dict[str, int] = {}
    for _ in range(repetitions):
        clear_cache()  # each repetition replays the stream from cold caches
        before = runtime_counters()
        started = time.perf_counter()
        _replay_incremental(stream)
        incremental_seconds.append(time.perf_counter() - started)
        after = runtime_counters()
        stats = {key: after[key] - before.get(key, 0) for key in _LOGIC_STAT_KEYS}

        clear_cache()
        started = time.perf_counter()
        _replay_reference(stream)
        reference_seconds.append(time.perf_counter() - started)

    def leg(seconds: List[float]) -> Dict[str, object]:
        median = statistics.median(seconds)
        return {
            "median_seconds": median,
            "min_seconds": min(seconds),
            "queries_per_second": (len(stream) / median) if median > 0 else None,
            "repetitions": repetitions,
        }

    incremental = leg(incremental_seconds)
    incremental["stats"] = stats
    reference = leg(reference_seconds)
    row["incremental"] = incremental
    row["reference"] = reference
    inc_median = incremental["median_seconds"]
    row["speedup"] = (
        reference["median_seconds"] / inc_median if inc_median > 0 else None
    )
    return row


def run_logic_suite(
    repetitions: int = 3,
    quick: bool = False,
    workloads: Optional[Sequence[LogicWorkload]] = None,
) -> Dict[str, object]:
    """Replay every logic workload through both solver stacks; report."""
    chosen = (
        list(workloads) if workloads is not None else default_logic_workloads(quick)
    )
    rows = [_measure_logic_workload(workload, repetitions) for workload in chosen]
    report = {
        "schema_version": LOGIC_BENCH_SCHEMA_VERSION,
        "suite": "logic",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "workloads": rows,
        "summary": _summarise_logic(rows),
        "caches": runtime_cache_stats(),
    }
    return report


def _summarise_logic(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    summary: Dict[str, object] = {}
    groups = sorted({row["group"] for row in rows})
    for group in groups:
        speedups = [
            row["speedup"]
            for row in rows
            if row["group"] == group and row.get("speedup") is not None
        ]
        if speedups:
            summary[f"{group}_min_speedup"] = min(speedups)
            summary[f"{group}_median_speedup"] = statistics.median(speedups)
    all_speedups = [row["speedup"] for row in rows if row.get("speedup") is not None]
    if all_speedups:
        summary["overall_median_speedup"] = statistics.median(all_speedups)
    return summary


def render_logic_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the logic report."""
    lines = [
        f"{'workload':34s} {'queries':>7s} {'inc q/s':>9s} {'ref q/s':>9s} "
        f"{'speedup':>8s} {'lemma':>6s} {'cache':>6s} {'pivots':>7s}"
    ]
    for row in report["workloads"]:
        incremental = row["incremental"]
        reference = row["reference"]
        stats = incremental.get("stats", {})

        def rate(cell):
            value = cell.get("queries_per_second")
            return f"{value:.0f}" if value else "-"

        speedup = row.get("speedup")
        lines.append(
            f"{row['name']:34s} {row['queries']:7d} {rate(incremental):>9s} "
            f"{rate(reference):>9s} {(f'{speedup:.1f}x' if speedup else '-'):>8s} "
            f"{stats.get('lemma_hits', 0):6d} {stats.get('theory_cache_hits', 0):6d} "
            f"{stats.get('simplex_pivots', 0):7d}"
        )
    for key, value in sorted(report["summary"].items()):
        lines.append(f"  {key}: {value:.2f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The domains suite: the columnar evaluation core, |E| sweep
# ---------------------------------------------------------------------------

#: The example-count sweep.  1000 is the gate point (see docs), 5000 shows
#: whether the speedup keeps growing; 10/16 cover the small-|E| regime where
#: the pure-Python fallback must not have regressed.
DOMAINS_EXAMPLE_COUNTS: Tuple[int, ...] = (10, 16, 100, 1000, 5000)
DOMAINS_QUICK_COUNTS: Tuple[int, ...] = (16, 1000)

#: |E| at or below this bound is the "small example set" regime: the python
#: leg there is gated against the reference leg (slowdown <= 1.1x).
DOMAINS_SMALL_EXAMPLES = 16


def domains_backend_legs() -> List[str]:
    """The measurable legs on this interpreter: numpy only when installed."""
    legs = ["reference", "python"]
    if NUMPY_OPS is not None:
        legs.append("numpy")
    return legs


def evaluate_slate(depth: int = 16) -> List[Term]:
    """A CLIA term slate whose members share subterms aggressively.

    Each step extends the running ``Plus`` chain ``acc`` and derives a
    ``Minus`` / ``LessThan`` / ``IfThenElse`` / ``Equal`` cluster from it, so
    consecutive slate entries overlap in all but their top few nodes — the
    shape the enumerator produces, and the one the per-call memo of
    :func:`repro.semantics.evaluator.evaluate` is built for.  The reference
    leg re-walks every shared subterm per term, like the pre-change
    evaluator did.
    """
    x = Term(alph.var("x"))
    one = Term(alph.num(1))
    terms: List[Term] = []
    acc = x
    for index in range(depth):
        acc = Term(alph.plus(2), (acc, one if index % 2 else x))
        shifted = Term(alph.minus(), (acc, x))
        guard = Term(alph.less_than(), (shifted, acc))
        bounded = Term(alph.if_then_else(), (guard, shifted, acc))
        terms.append(bounded)
        terms.append(Term(alph.equal(), (bounded, acc)))
    return terms


def _domains_leg(
    seconds: List[float], examples_count: int, repetitions: int
) -> Dict[str, object]:
    median = statistics.median(seconds)
    return {
        "median_seconds": median,
        "min_seconds": min(seconds),
        # Throughput normalised by |E| alone: how many examples per second
        # this workload processes end-to-end at this |E|.
        "examples_per_sec": (examples_count / median) if median > 0 else None,
        "repetitions": repetitions,
    }


def _attach_domain_ratios(row: Dict[str, object]) -> None:
    def median_of(leg: str) -> Optional[float]:
        cell = row.get(leg)
        if isinstance(cell, dict):
            return cell["median_seconds"]  # type: ignore[return-value]
        return None

    reference = median_of("reference")
    python = median_of("python")
    numpy = median_of("numpy")
    row["python_vs_reference"] = (reference / python) if reference and python else None
    row["numpy_vs_reference"] = (reference / numpy) if reference and numpy else None
    row["numpy_vs_python"] = (python / numpy) if python and numpy else None


def _time_leg(run: Callable[[], object], repetitions: int) -> List[float]:
    seconds = []
    for _ in range(repetitions):
        clear_cache()  # cold GFA/simplification caches for every repetition
        started = time.perf_counter()
        run()
        seconds.append(time.perf_counter() - started)
    return seconds


def _measure_evaluate_row(
    examples_count: int, repetitions: int, legs: Sequence[str]
) -> Dict[str, object]:
    terms = evaluate_slate()
    examples = large_example_set(examples_count)

    # Differential guard before timing: every leg must produce the same
    # vector for every slate term (vectors are interned, so == is cheap).
    expected = [reference_evaluate(term, examples) for term in terms]
    for backend in legs:
        if backend == "reference":
            continue
        with use_backend(backend):
            memo: EvalMemo = {}
            actual = [evaluate(term, examples, memo) for term in terms]
        if actual != expected:
            raise ReproError(
                f"evaluate mismatch on the {backend} backend at |E|={examples_count}"
            )

    def run_reference() -> None:
        for term in terms:
            reference_evaluate(term, examples)

    def run_batched() -> None:
        memo: EvalMemo = {}
        for term in terms:
            evaluate(term, examples, memo)

    row: Dict[str, object] = {
        "name": f"evaluate_e{examples_count}",
        "group": "evaluate",
        "examples": examples_count,
        "terms": len(terms),
    }
    for leg in legs:
        if leg == "reference":
            seconds = _time_leg(run_reference, repetitions)
        else:
            with use_backend(leg):
                seconds = _time_leg(run_batched, repetitions)
        row[leg] = _domains_leg(seconds, examples_count, repetitions)
    _attach_domain_ratios(row)
    return row


def _measure_interval_row(
    examples_count: int, repetitions: int, legs: Sequence[str]
) -> Dict[str, object]:
    grammar = chain_grammar(12)
    examples = example_set(examples_count)

    def solve(leg: str):
        if leg == "reference":
            return solve_abstract_gfa(
                grammar, examples, domain=ReferenceIntervalDomain()
            )
        with use_backend(leg):
            return solve_abstract_gfa(grammar, examples, domain="interval")

    # Differential guard: the fixpoint's start value must agree across legs.
    clear_cache()
    baseline = solve("reference").start_value.intervals
    for leg in legs:
        if leg == "reference":
            continue
        clear_cache()
        if solve(leg).start_value.intervals != baseline:
            raise ReproError(
                f"interval fixpoint mismatch on the {leg} leg at |E|={examples_count}"
            )

    row: Dict[str, object] = {
        "name": f"interval_gfa_e{examples_count}",
        "group": "interval",
        "examples": examples_count,
    }
    for leg in legs:
        seconds = _time_leg(lambda: solve(leg), repetitions)
        row[leg] = _domains_leg(seconds, examples_count, repetitions)
    _attach_domain_ratios(row)
    return row


def _measure_powerset_row(
    examples_count: int, repetitions: int, legs: Sequence[str]
) -> Dict[str, object]:
    # No frozen twin here: the pre-change powerset transfers were the same
    # per-pair Python loops the python backend runs, so the python leg *is*
    # the baseline and the row carries backend legs only.
    benchmark = scaling_benchmark(8)
    examples = example_set(examples_count)
    backend_legs = [leg for leg in legs if leg != "reference"]

    def check(leg: str):
        with use_backend(leg):
            return check_examples_abstract(
                benchmark.problem,
                examples,
                domain=create_domain(
                    "powerset", cap=64, max_examples=examples_count
                ),
            )

    clear_cache()
    baseline_verdict = check(backend_legs[0]).verdict
    for leg in backend_legs[1:]:
        clear_cache()
        if check(leg).verdict is not baseline_verdict:
            raise ReproError(
                f"powerset verdict mismatch on the {leg} leg at |E|={examples_count}"
            )

    row: Dict[str, object] = {
        "name": f"powerset_e{examples_count}",
        "group": "powerset",
        "examples": examples_count,
    }
    for leg in backend_legs:
        seconds = _time_leg(lambda: check(leg), repetitions)
        row[leg] = _domains_leg(seconds, examples_count, repetitions)
    _attach_domain_ratios(row)
    return row


def run_domains_suite(
    repetitions: int = 3,
    quick: bool = False,
    example_counts: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """Sweep the columnar hot paths over |E|; compare legs; report."""
    counts = (
        tuple(example_counts)
        if example_counts is not None
        else (DOMAINS_QUICK_COUNTS if quick else DOMAINS_EXAMPLE_COUNTS)
    )
    legs = domains_backend_legs()
    rows: List[Dict[str, object]] = []
    for measure in (
        _measure_evaluate_row,
        _measure_interval_row,
        _measure_powerset_row,
    ):
        for count in counts:
            rows.append(measure(count, repetitions, legs))
    return {
        "schema_version": DOMAINS_BENCH_SCHEMA_VERSION,
        "suite": "domains",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "legs": legs,
        "numpy_available": NUMPY_OPS is not None,
        "workloads": rows,
        "summary": _summarise_domains(rows),
    }


def _summarise_domains(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Roll-ups including the two gates CI checks (docs/bench-artifacts.md).

    * ``gate_numpy_speedup_e1000`` — the *minimum* numpy-vs-reference
      speedup over the ``evaluate`` and ``interval`` groups at |E| = 1000;
      the acceptance bar is >= 5x.  Absent when numpy is not installed.
    * ``gate_python_small_e_slowdown`` — the *maximum* python-vs-reference
      slowdown at |E| <= DOMAINS_SMALL_EXAMPLES over the same groups; the
      bar is <= 1.1x (the fallback must not regress small example sets).
    """
    summary: Dict[str, object] = {}
    gate_groups = ("evaluate", "interval")
    gate_speedups = [
        row["numpy_vs_reference"]
        for row in rows
        if row["group"] in gate_groups
        and row["examples"] == 1000
        and row.get("numpy_vs_reference") is not None
    ]
    if gate_speedups:
        summary["gate_numpy_speedup_e1000"] = min(gate_speedups)
    small_slowdowns = [
        1.0 / row["python_vs_reference"]
        for row in rows
        if row["group"] in gate_groups
        and row["examples"] <= DOMAINS_SMALL_EXAMPLES
        and row.get("python_vs_reference")
    ]
    if small_slowdowns:
        summary["gate_python_small_e_slowdown"] = max(small_slowdowns)
    for group in sorted({row["group"] for row in rows}):
        for ratio in ("numpy_vs_python", "numpy_vs_reference"):
            values = [
                row[ratio]
                for row in rows
                if row["group"] == group and row.get(ratio) is not None
            ]
            if values:
                summary[f"{group}_{ratio}_median"] = statistics.median(values)
    return summary


def render_domains_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the domains report."""
    lines = [
        f"{'workload':22s} {'|E|':>6s} {'ref ex/s':>10s} {'py ex/s':>10s} "
        f"{'np ex/s':>10s} {'np/ref':>7s} {'np/py':>7s}"
    ]

    def rate(row: Dict[str, object], leg: str) -> str:
        cell = row.get(leg)
        if not isinstance(cell, dict):
            return "-"
        value = cell.get("examples_per_sec")
        return f"{value:.0f}" if value else "-"

    def ratio(row: Dict[str, object], key: str) -> str:
        value = row.get(key)
        return f"{value:.1f}x" if value else "-"

    for row in report["workloads"]:
        lines.append(
            f"{row['name']:22s} {row['examples']:6d} {rate(row, 'reference'):>10s} "
            f"{rate(row, 'python'):>10s} {rate(row, 'numpy'):>10s} "
            f"{ratio(row, 'numpy_vs_reference'):>7s} "
            f"{ratio(row, 'numpy_vs_python'):>7s}"
        )
    for key, value in sorted(report["summary"].items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            lines.append(f"  {key}: {value:.2f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The grammar (tree-automaton core) suite
# ---------------------------------------------------------------------------
#
# Two question families, both over generated grammar-scale slates
# (:mod:`repro.suites.scaling`'s redundant chains and expression grammars,
# hundreds of productions at the top end):
#
# * **Pruning** — how much smaller do the GFA equation systems get when the
#   grammar goes through observational-equivalence pruning first, and what
#   does that do to equation evaluations and wall time on the fig2 (exact
#   semi-linear) and fig3 (abstract-interval) solve legs?
# * **Enumeration** — how fast does each enumerator cover the *same*
#   de-duplicated candidate space (``candidates_per_sec`` shares its
#   numerator across legs: the number of distinct-behavior candidates up to
#   the size budget, a property of the grammar, divided by each leg's wall
#   time), and what does bank memoization buy on the repeat rounds the
#   CEGIS loop actually performs?

#: Version of the BENCH_grammar.json schema (see docs/bench-artifacts.md).
GRAMMAR_BENCH_SCHEMA_VERSION = 1

DEFAULT_GRAMMAR_BENCH_PATH = "BENCH_grammar.json"

#: ``(length, fanout)`` of the redundant-chain slate for the pruning rows.
GRAMMAR_PRUNE_SLATE: Tuple[Tuple[int, int], ...] = ((6, 3), (10, 3), (14, 4), (20, 5))
GRAMMAR_PRUNE_QUICK_SLATE: Tuple[Tuple[int, int], ...] = ((6, 3), (20, 5))

#: Fanouts of the redundant-expression slate for the enumerator rows.
GRAMMAR_ENUM_SLATE: Tuple[int, ...] = (2, 3, 4)
GRAMMAR_ENUM_QUICK_SLATE: Tuple[int, ...] = (2, 4)

#: |E| for the pruning rows and the enumerator example sets.
GRAMMAR_EXAMPLES = 3

#: Rows at or above this many productions feed the wall-clock gate (tiny
#: rows are too noisy to gate on).
GRAMMAR_GATE_MIN_PRODUCTIONS = 80


def _measure_grammar_prune_row(
    length: int, fanout: int, leg: str, repetitions: int
) -> Dict[str, object]:
    from repro.grammar import prune_grammar
    from repro.suites.scaling import redundant_chain_grammar

    grammar = redundant_chain_grammar(
        length, fanout, name=f"redundant_chain_{length}x{fanout}"
    )
    examples = example_set(GRAMMAR_EXAMPLES)
    solver = solve_lia_gfa if leg == "fig2_lia" else solve_abstract_gfa
    _, report = prune_grammar(grammar, examples, mode="oe")
    row: Dict[str, object] = {
        "name": f"{leg}_chain_{length}x{fanout}",
        "group": "prune",
        "leg": leg,
        "length": length,
        "fanout": fanout,
        "examples": GRAMMAR_EXAMPLES,
        "states": {"before": report.states_before, "after": report.states_after},
        "productions": {
            "before": report.productions_before,
            "after": report.productions_after,
            "pruned": report.productions_pruned,
        },
    }
    for mode in ("off", "oe"):
        solution = solver(grammar, examples, prune=mode)
        seconds = _time_leg(lambda: solver(grammar, examples, prune=mode), repetitions)
        row[mode] = {
            "evaluations": solution.evaluations,
            "median_seconds": statistics.median(seconds),
            "seconds": seconds,
        }
    off_evals = row["off"]["evaluations"]
    oe_evals = row["oe"]["evaluations"]
    row["evaluation_reduction"] = off_evals / max(1, oe_evals)
    row["wall_ratio_oe_vs_off"] = row["oe"]["median_seconds"] / max(
        1e-9, row["off"]["median_seconds"]
    )
    return row


def _measure_grammar_enum_row(fanout: int, repetitions: int) -> Dict[str, object]:
    from repro.suites.scaling import redundant_expression_benchmark
    from repro.synth import EnumerativeSynthesizer, ReferenceSynthesizer

    benchmark = redundant_expression_benchmark(fanout)
    problem = benchmark.problem
    examples = example_set(GRAMMAR_EXAMPLES)
    max_size, max_terms = 7, 50_000

    def leg(seconds: List[float], candidates: int) -> Dict[str, object]:
        median = statistics.median(seconds)
        return {
            "median_seconds": median,
            "seconds": seconds,
            "candidates_per_sec": candidates / max(1e-9, median),
        }

    # The shared numerator: distinct-behavior candidates up to the budget.
    probe = EnumerativeSynthesizer(max_size, max_terms)
    candidates = probe.synthesize(problem, examples).explored_terms

    reference_seconds = _time_leg(
        lambda: ReferenceSynthesizer(max_size, max_terms).synthesize(
            problem, examples
        ),
        repetitions,
    )
    cold_seconds = _time_leg(
        lambda: EnumerativeSynthesizer(max_size, max_terms).synthesize(
            problem, examples
        ),
        repetitions,
    )
    # Warm leg: the synthesizer keeps its banks across calls, the shape of
    # repeat CEGIS rounds whose example set did not change.
    warm_synthesizer = EnumerativeSynthesizer(max_size, max_terms)
    warm_synthesizer.synthesize(problem, examples)
    warm_seconds = _time_leg(
        lambda: warm_synthesizer.synthesize(problem, examples), repetitions
    )

    row: Dict[str, object] = {
        "name": f"enumerate_expr_{fanout}",
        "group": "enumerate",
        "fanout": fanout,
        "productions": problem.grammar.num_productions,
        "max_size": max_size,
        "examples": GRAMMAR_EXAMPLES,
        "distinct_candidates": candidates,
        "reference": leg(reference_seconds, candidates),
        "memoized": leg(cold_seconds, candidates),
        "memoized_warm": leg(warm_seconds, candidates),
    }
    row["speedup_cold"] = row["reference"]["median_seconds"] / max(
        1e-9, row["memoized"]["median_seconds"]
    )
    row["speedup_warm"] = row["reference"]["median_seconds"] / max(
        1e-9, row["memoized_warm"]["median_seconds"]
    )
    return row


def run_grammar_suite(repetitions: int = 3, quick: bool = False) -> Dict[str, object]:
    """Measure OE pruning and the memoized enumerator on generated slates."""
    prune_slate = GRAMMAR_PRUNE_QUICK_SLATE if quick else GRAMMAR_PRUNE_SLATE
    enum_slate = GRAMMAR_ENUM_QUICK_SLATE if quick else GRAMMAR_ENUM_SLATE
    rows: List[Dict[str, object]] = []
    for length, fanout in prune_slate:
        for leg in ("fig2_lia", "fig3_abstract"):
            rows.append(_measure_grammar_prune_row(length, fanout, leg, repetitions))
    for fanout in enum_slate:
        rows.append(_measure_grammar_enum_row(fanout, repetitions))
    return {
        "schema_version": GRAMMAR_BENCH_SCHEMA_VERSION,
        "suite": "grammar",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "workloads": rows,
        "summary": _summarise_grammar(rows),
    }


def _summarise_grammar(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Roll-ups including the gates CI checks (docs/bench-artifacts.md).

    * ``gate_oe_evaluation_reduction`` — the *best* equation-evaluation
      reduction over the fig2/fig3 prune rows; the acceptance bar is >= 2x.
    * ``gate_prune_wall_ratio`` — the *worst* oe-vs-off wall-clock ratio
      over prune rows with at least ``GRAMMAR_GATE_MIN_PRODUCTIONS``
      productions; the (noise-tolerant) bar is <= 1.25.
    * ``gate_enumerator_speedup`` — the *worst* cold-leg speedup of the
      memoized enumerator over the reference; the bar is >= 1.0.
    """
    summary: Dict[str, object] = {}
    prune_rows = [row for row in rows if row["group"] == "prune"]
    enum_rows = [row for row in rows if row["group"] == "enumerate"]
    if prune_rows:
        summary["gate_oe_evaluation_reduction"] = max(
            row["evaluation_reduction"] for row in prune_rows
        )
        summary["evaluation_reduction_median"] = statistics.median(
            row["evaluation_reduction"] for row in prune_rows
        )
        gated = [
            row
            for row in prune_rows
            if row["productions"]["before"] >= GRAMMAR_GATE_MIN_PRODUCTIONS
        ]
        if gated:
            summary["gate_prune_wall_ratio"] = max(
                row["wall_ratio_oe_vs_off"] for row in gated
            )
        summary["productions_pruned_total"] = sum(
            row["productions"]["pruned"] for row in prune_rows
        )
    if enum_rows:
        summary["gate_enumerator_speedup"] = min(
            row["speedup_cold"] for row in enum_rows
        )
        summary["enumerator_warm_speedup_median"] = statistics.median(
            row["speedup_warm"] for row in enum_rows
        )
    return summary


def render_grammar_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the grammar report."""
    lines = [
        f"{'workload':28s} {'|P| off':>8s} {'|P| oe':>7s} {'evals off':>10s} "
        f"{'evals oe':>9s} {'reduction':>9s} {'wall oe/off':>11s}"
    ]
    for row in report["workloads"]:
        if row["group"] != "prune":
            continue
        lines.append(
            f"{row['name']:28s} {row['productions']['before']:8d} "
            f"{row['productions']['after']:7d} {row['off']['evaluations']:10d} "
            f"{row['oe']['evaluations']:9d} {row['evaluation_reduction']:8.1f}x "
            f"{row['wall_ratio_oe_vs_off']:10.2f}x"
        )
    lines.append("")
    lines.append(
        f"{'workload':28s} {'|P|':>6s} {'cands':>6s} {'ref c/s':>9s} "
        f"{'memo c/s':>9s} {'cold':>6s} {'warm':>8s}"
    )
    for row in report["workloads"]:
        if row["group"] != "enumerate":
            continue
        lines.append(
            f"{row['name']:28s} {row['productions']:6d} "
            f"{row['distinct_candidates']:6d} "
            f"{row['reference']['candidates_per_sec']:9.0f} "
            f"{row['memoized']['candidates_per_sec']:9.0f} "
            f"{row['speedup_cold']:5.1f}x {row['speedup_warm']:7.1f}x"
        )
    for key, value in sorted(report["summary"].items()):
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            lines.append(f"  {key}: {value:.2f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The chaos (solve-fabric resilience) suite
# ---------------------------------------------------------------------------
#
# Unlike the other suites this one measures *survival*, not speed: every
# scenario injects a different failure mode into the fabric's workers (via
# request tags, so nothing global is armed) and checks that the request
# still ends in a well-formed wire response, that crashed workers are
# replaced, and that the circuit breakers trip and recover as specified.


def _chaos_request(tags=None, timeout=10.0, engine="naySL"):
    from repro.api.wire import SolveRequest

    return SolveRequest(
        benchmark="plane1",
        engine=engine,
        kind="check",
        timeout_seconds=timeout,
        tags=dict(tags or {}),
    )


def _chaos_well_formed(response) -> bool:
    """Round-trip the response through the strict wire parser."""
    from repro.api.wire import SolveResponse

    try:
        SolveResponse.from_json(response.to_json())
    except Exception:  # noqa: BLE001 — malformed is exactly what we probe for
        return False
    return True


def run_chaos_suite(repetitions: int = 1, quick: bool = False) -> Dict[str, object]:
    """Drive the fault slate through a supervised fabric; return the report.

    ``repetitions`` scales the clean/self-heal request counts (the faulted
    scenarios are fixed — each exists to prove one failure mode).  ``quick``
    is accepted for CLI symmetry; the slate is already CI-sized (>= 20
    requests, >= 4 fault kinds).
    """
    import os
    import signal
    import threading as _threading

    from repro.api.facade import timeout_response
    from repro.engine.supervisor import (
        BreakerBoard,
        FabricTimeoutError,
        RetryPolicy,
        Supervisor,
    )
    from repro.testing.faults import reset_fault_state

    reset_fault_state()
    clean_count = max(2, 2 * max(1, repetitions))
    board = BreakerBoard(threshold=2, cooldown_seconds=0.5)
    fabric = Supervisor(
        3,
        warm=False,
        breakers=board,
        retry=RetryPolicy(max_attempts=3, base_delay_seconds=0.02),
        name="chaos",
    )
    scenarios: List[Dict[str, object]] = []
    total = 0
    well_formed = 0
    started = time.monotonic()

    def run_scenario(name, requests, expect):
        nonlocal total, well_formed
        outcomes: List[str] = []
        retries = 0
        replaced = 0
        injected = 0
        scenario_start = time.monotonic()
        for request in requests:
            response = fabric.solve(request)
            outcomes.append(response.verdict)
            retries += response.solver_stats.get("retries", 0)
            replaced += response.solver_stats.get("workers_replaced", 0)
            injected += response.solver_stats.get("faults_injected", 0)
            total += 1
            well_formed += 1 if _chaos_well_formed(response) else 0
        row = {
            "name": name,
            "requests": len(requests),
            "outcomes": outcomes,
            "expect": expect,
            "ok": all(outcome in expect for outcome in outcomes),
            "retries": retries,
            "workers_replaced": replaced,
            "faults_injected": injected,
            "seconds": round(time.monotonic() - scenario_start, 4),
        }
        scenarios.append(row)
        return row

    try:
        pids_before = fabric.worker_pids()

        # 1. Baseline: clean requests on the fresh pool.
        run_scenario(
            "clean",
            [_chaos_request() for _ in range(clean_count)],
            expect=("unrealizable",),
        )

        # 2. crash — the worker dies (os._exit) on every attempt; bounded
        # retries run out and the request degrades to a transient error.
        run_scenario(
            "crash",
            [_chaos_request({"faults": "crash@*"}) for _ in range(2)],
            expect=("error",),
        )
        board.for_engine("naySL").record_success()  # crashes tripped it; re-arm

        # 3. slow — the leg stalls briefly, then answers normally; the
        # injection is visible in solver_stats but harmless.
        run_scenario(
            "slow",
            [_chaos_request({"faults": "slow@*:0.1"}) for _ in range(3)],
            expect=("unrealizable",),
        )

        # 4. corrupt — the reply payload fails wire validation at the pipe;
        # every retry lands on a (fresh) worker that corrupts again, so the
        # request errors out after max_attempts with retries recorded.
        corrupt = run_scenario(
            "corrupt",
            [_chaos_request({"faults": "corrupt@*"}) for _ in range(2)],
            expect=("error",),
        )
        corrupt["ok"] = corrupt["ok"] and corrupt["retries"] > 0
        board.for_engine("naySL").record_success()

        # 5. oom — an allocation burst ending in MemoryError: a
        # deterministic in-worker failure, reported as an error verdict
        # without any retry.
        oom = run_scenario(
            "oom",
            [_chaos_request({"faults": "oom@*:16"}) for _ in range(2)],
            expect=("error",),
        )
        oom["ok"] = oom["ok"] and oom["retries"] == 0

        # 6. error — the deterministic injected failure; the retry policy
        # must NOT retry it.
        deterministic = run_scenario(
            "error",
            [_chaos_request({"faults": "error@*"}) for _ in range(2)],
            expect=("error",),
        )
        deterministic["ok"] = deterministic["ok"] and deterministic["retries"] == 0

        # 7. kill -9 mid-solve — the one genuinely *transient* fault: the
        # parent SIGKILLs the busy worker while a slowed request is in
        # flight; the retry lands on a replacement and succeeds.
        holder: Dict[str, object] = {}

        def solve_slow():
            holder["response"] = fabric.solve(
                _chaos_request({"faults": "slow@*:1.0"}, timeout=15.0)
            )

        thread = _threading.Thread(target=solve_slow)
        thread.start()
        kill_deadline = time.monotonic() + 5.0
        killed_pid = None
        while time.monotonic() < kill_deadline and killed_pid is None:
            busy = fabric.busy_pids()
            if busy:
                killed_pid = busy[0]
                os.kill(killed_pid, signal.SIGKILL)
            else:
                time.sleep(0.02)
        thread.join(timeout=60.0)
        response = holder.get("response")
        total += 1
        ok = (
            response is not None
            and _chaos_well_formed(response)
            and response.verdict == "unrealizable"
            and response.solver_stats.get("retries", 0) >= 1
        )
        well_formed += 1 if response is not None and _chaos_well_formed(response) else 0
        scenarios.append(
            {
                "name": "kill9",
                "requests": 1,
                "outcomes": [response.verdict if response is not None else "lost"],
                "expect": ["unrealizable"],
                "ok": bool(ok),
                "killed_pid": killed_pid,
                "retries": (
                    response.solver_stats.get("retries", 0)
                    if response is not None
                    else 0
                ),
                "workers_replaced": (
                    response.solver_stats.get("workers_replaced", 0)
                    if response is not None
                    else 0
                ),
                "faults_injected": 0,
                "seconds": 0.0,
            }
        )
        board.for_engine("naySL").record_success()

        # 8. hang — the leg stops making progress entirely; the harvest
        # deadline fires, the stuck worker is killed and replaced, and the
        # caller records the same timeout response Supervisor.solve would
        # produce at the hard guard.
        hang_request = _chaos_request({"faults": "hang@*"}, timeout=5.0)
        job = fabric.submit(hang_request, soft_timeout=5.0)
        try:
            response = fabric.harvest(job, timeout=1.5)
            hang_outcome = response.verdict  # should not happen
        except FabricTimeoutError:
            fabric.cancel(job)
            response = timeout_response(hang_request)
            hang_outcome = response.verdict
        total += 1
        well_formed += 1 if _chaos_well_formed(response) else 0
        scenarios.append(
            {
                "name": "hang",
                "requests": 1,
                "outcomes": [hang_outcome],
                "expect": ["timeout"],
                "ok": hang_outcome == "timeout",
                "retries": 0,
                "workers_replaced": 1,
                "faults_injected": 0,
                "seconds": 0.0,
            }
        )
        board.for_engine("naySL").record_success()

        # 9. breaker — two consecutive crashes trip the breaker (threshold
        # 2); the next request is refused without running; after the
        # cooldown a clean half-open probe re-closes it.
        breaker_board = BreakerBoard(threshold=2, cooldown_seconds=0.4)
        breaker_fabric = Supervisor(
            1,
            warm=False,
            breakers=breaker_board,
            retry=RetryPolicy(max_attempts=1, base_delay_seconds=0.02),
            name="chaos-breaker",
        )
        try:
            for _ in range(2):
                breaker_fabric.solve(_chaos_request({"faults": "crash@*"}))
                total += 1
                well_formed += 1
            tripped = breaker_board.for_engine("naySL").snapshot()
            refused = breaker_fabric.solve(_chaos_request())
            total += 1
            well_formed += 1 if _chaos_well_formed(refused) else 0
            time.sleep(0.5)  # cooldown: the next request is the half-open probe
            probe = breaker_fabric.solve(_chaos_request())
            total += 1
            well_formed += 1 if _chaos_well_formed(probe) else 0
            recovered = breaker_board.for_engine("naySL").snapshot()
            scenarios.append(
                {
                    "name": "breaker",
                    "requests": 4,
                    "outcomes": [refused.verdict, probe.verdict],
                    "expect": ["error", "unrealizable"],
                    "ok": (
                        tripped["state"] == "open"
                        and tripped["trips"] >= 1
                        and refused.verdict == "error"
                        and "circuit breaker open" in (refused.error or "")
                        and probe.verdict == "unrealizable"
                        and recovered["state"] == "closed"
                    ),
                    "tripped": tripped,
                    "recovered": recovered,
                    "retries": 0,
                    "workers_replaced": 2,
                    "faults_injected": 0,
                    "seconds": 0.0,
                }
            )
        finally:
            breaker_fabric.shutdown()

        # 10. self-heal — after everything above, clean requests must still
        # succeed on the (heavily replaced) pool.
        heal = run_scenario(
            "self-heal",
            [_chaos_request() for _ in range(clean_count)],
            expect=("unrealizable",),
        )
        pids_after = fabric.worker_pids()
        heal["pool_replaced_workers"] = sorted(
            set(pids_after) - set(pids_before)
        )
        heal["ok"] = heal["ok"] and bool(set(pids_after) - set(pids_before))

        fabric_stats = fabric.stats.snapshot()
    finally:
        fabric.shutdown()

    report = {
        "schema_version": CHAOS_BENCH_SCHEMA_VERSION,
        "suite": "chaos",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "fault_kinds": ["crash", "hang", "slow", "corrupt", "oom", "error", "kill9"],
        "scenarios": scenarios,
        "fabric_stats": fabric_stats,
        "breakers": board.snapshot(),
        "summary": {
            "requests": total,
            "well_formed": well_formed,
            "all_well_formed": well_formed == total,
            "all_scenarios_ok": all(row["ok"] for row in scenarios),
            "retries": sum(row.get("retries", 0) for row in scenarios),
            "workers_replaced": fabric_stats.get("workers_replaced", 0),
            "faults_injected": sum(row.get("faults_injected", 0) for row in scenarios),
            "breaker_trips": next(
                (row.get("tripped", {}).get("trips", 0) for row in scenarios
                 if row["name"] == "breaker"),
                0,
            ),
            "total_seconds": round(time.monotonic() - started, 4),
        },
    }
    return report


def render_chaos_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the chaos report."""
    lines = [f"{'scenario':12s} {'reqs':>5s} {'ok':>4s} {'retries':>8s} "
             f"{'replaced':>9s} {'outcomes'}"]
    for row in report["scenarios"]:
        outcomes = ",".join(sorted(set(row["outcomes"]))) or "-"
        lines.append(
            f"{row['name']:12s} {row['requests']:5d} "
            f"{('yes' if row['ok'] else 'NO'):>4s} {row.get('retries', 0):8d} "
            f"{row.get('workers_replaced', 0):9d} {outcomes}"
        )
    summary = report["summary"]
    lines.append(
        f"  requests: {summary['requests']}  well-formed: {summary['well_formed']}"
        f"  retries: {summary['retries']}"
        f"  workers_replaced: {summary['workers_replaced']}"
        f"  breaker_trips: {summary['breaker_trips']}"
    )
    lines.append(
        "  all scenarios ok: "
        + ("yes" if summary["all_scenarios_ok"] else "NO")
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# The serve load harness (BENCH_serve.json)
# ---------------------------------------------------------------------------

#: Benchmark slate the serve load harness repeats: cheap, definitive
#: unrealizable checks across the families the engines exercise, so a
#: request stream over them is realistic but each individual solve stays
#: sub-second (the harness measures the *service*, not the engines).
SERVE_BENCH_SLATE = (
    "plane1",
    "plane2",
    "plane3",
    "guard1",
    "guard2",
    "guard3",
    "mpg_guard1",
    "ite1",
    "ite2",
    "max2",
)

#: The benchmark the harness solves once to warm the fabric workers and
#: the parent's import caches before any timed leg (kept out of the slate
#: so its store entry cannot turn a cold-leg request into a hit).
SERVE_WARMUP_BENCHMARK = "guard4"


def _serve_percentile(values: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile of a sample by rank (no interpolation)."""
    import math

    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


def _serve_drive(
    server, payloads: List[Dict[str, object]], clients: int
) -> List[Dict[str, object]]:
    """POST every payload through ``clients`` concurrent threads.

    Each worker thread opens one connection per request (the stdlib server
    speaks HTTP/1.0, one request per connection) and records wall latency,
    status, wire validity, verdict, and whether the response was served
    from the persistent store.
    """
    import http.client
    import threading as _threading

    from repro.api.wire import SolveResponse

    host, port = server.server_address[0], server.server_address[1]
    results: List[Dict[str, object]] = []
    lock = _threading.Lock()
    cursor = {"next": 0}

    def worker() -> None:
        while True:
            with lock:
                index = cursor["next"]
                if index >= len(payloads):
                    return
                cursor["next"] = index + 1
            body = json.dumps(payloads[index]).encode("utf-8")
            started = time.perf_counter()
            conn = http.client.HTTPConnection(host, port, timeout=300)
            try:
                conn.request(
                    "POST",
                    "/solve",
                    body,
                    {"Content-Type": "application/json"},
                )
                reply = conn.getresponse()
                status = reply.status
                raw = reply.read()
            finally:
                conn.close()
            elapsed = time.perf_counter() - started
            row: Dict[str, object] = {
                "seconds": elapsed,
                "status": status,
                "schema_valid": False,
                "definitive": False,
                "store_hit": False,
            }
            try:
                payload = json.loads(raw.decode("utf-8"))
                response = SolveResponse.from_json(payload)
                row["schema_valid"] = status == 200
                row["definitive"] = response.is_definitive
                row["store_hit"] = bool(response.solver_stats.get("store_hits"))
            except Exception:  # noqa: BLE001 — malformed replies count as invalid
                pass
            with lock:
                results.append(row)

    threads = [_threading.Thread(target=worker) for _ in range(max(1, clients))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return results


def _serve_leg(name: str, unique: int, rows: List[Dict[str, object]]) -> Dict[str, object]:
    """Aggregate one driven leg into a BENCH_serve.json row."""
    latencies = [row["seconds"] for row in rows]
    seconds = sum(latencies)
    wall = max(latencies) if latencies else 0.0  # placeholder; caller overwrites
    hits = sum(1 for row in rows if row["store_hit"])
    return {
        "name": name,
        "requests": len(rows),
        "unique": unique,
        "seconds": round(wall, 4),
        "requests_per_sec": 0.0,
        "p50_ms": round(_serve_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_serve_percentile(latencies, 0.99) * 1000, 3),
        "mean_ms": round((seconds / len(rows)) * 1000, 3) if rows else 0.0,
        "store_hits": hits,
        "hit_ratio": round(hits / len(rows), 4) if rows else 0.0,
        "schema_valid": sum(1 for row in rows if row["schema_valid"]),
        "definitive": sum(1 for row in rows if row["definitive"]),
    }


def run_serve_suite(
    repetitions: int = 3,
    quick: bool = False,
    clients: Optional[int] = None,
) -> Dict[str, object]:
    """Concurrent-client load over the real HTTP server + persistent store.

    Spins up the production stack in-process — :func:`make_server` backed by
    a supervised solve fabric and a fresh
    :class:`~repro.engine.store.ResultStore` in a temp directory — and
    drives ``clients`` concurrent threads through three request streams:

    * **cold** — every slate benchmark exactly once: all misses, every
      request pays for a real solve (the store is empty);
    * **warm_repeat** — the repeat-heavy leg: the same slate round-robined
      ``max(4, 2 * repetitions)`` times, every request a store hit;
    * **mixed** — repeats interleaved with fresh variants (distinct seeds,
      so distinct fingerprints but identical solve cost), the realistic
      hit-ratio regime.

    The headline gate is ``summary["gate_warm_vs_cold_throughput"]`` —
    warm requests/sec over cold requests/sec, which the committed artifact
    must show **>= 5x** (CI re-checks a fresh quick run against a
    noise-tolerant 3x bar).  Ratios, not absolute rates, are gated: wall
    clocks vary across machines, the cold/warm split on the same machine in
    the same run does not.
    """
    import os
    import shutil
    import tempfile
    import threading as _threading

    from repro.api import Solver
    from repro.api.service import make_server
    from repro.engine.store import (
        STORE_ENV,
        ResultStore,
        install_result_store,
    )
    from repro.engine.supervisor import (
        BreakerBoard,
        RetryPolicy,
        Supervisor,
        install_fabric,
        shutdown_fabric,
    )

    slate = list(SERVE_BENCH_SLATE[:4] if quick else SERVE_BENCH_SLATE)
    clients = clients if clients is not None else (4 if quick else 6)
    warm_repeats = max(2, repetitions) if quick else max(4, 2 * repetitions)
    workers = 2 if quick else 3

    def request_payload(benchmark: str, seed: int = 0) -> Dict[str, object]:
        return {
            "benchmark": benchmark,
            "engine": "naySL",
            "kind": "check",
            "seed": seed,
            "timeout_seconds": 120.0,
        }

    tempdir = tempfile.mkdtemp(prefix="repro-serve-bench-")
    store_path = os.path.join(tempdir, "store.sqlite")
    previous_env = os.environ.get(STORE_ENV)
    os.environ[STORE_ENV] = store_path  # workers inherit through fork/spawn
    store = ResultStore(store_path)
    previous_store = install_result_store(store)
    fabric = Supervisor(
        workers,
        warm=False,
        breakers=BreakerBoard(threshold=100),
        retry=RetryPolicy(max_attempts=2, base_delay_seconds=0.05),
        name="serve-bench",
    )
    previous_fabric = install_fabric(fabric)
    server = make_server(
        port=0, solver=Solver(timeout_seconds=120.0), max_inflight=64
    )
    server_thread = _threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    started = time.monotonic()
    legs: List[Dict[str, object]] = []
    try:
        # Warm the workers (imports, caches) outside any timed leg; the
        # warmup benchmark is not in the slate, so the cold leg stays cold.
        _serve_drive(server, [request_payload(SERVE_WARMUP_BENCHMARK)], 1)

        def timed_leg(name: str, payloads, unique: int) -> Dict[str, object]:
            leg_started = time.perf_counter()
            rows = _serve_drive(server, payloads, clients)
            wall = time.perf_counter() - leg_started
            leg = _serve_leg(name, unique, rows)
            leg["seconds"] = round(wall, 4)
            leg["requests_per_sec"] = round(len(rows) / wall, 3) if wall else 0.0
            legs.append(leg)
            return leg

        # 1. cold — every request is a miss into an empty store.
        cold = timed_leg(
            "cold", [request_payload(name) for name in slate], unique=len(slate)
        )

        # 2. warm_repeat — the repeat-heavy leg: all hits, no admission
        # slot, no engine run, certificate included in every reply.
        warm_stream = [
            request_payload(slate[index % len(slate)])
            for index in range(len(slate) * warm_repeats)
        ]
        warm = timed_leg("warm_repeat", warm_stream, unique=len(slate))

        # 3. mixed — ~70% repeats / ~30% fresh variants (new seeds solve
        # identically but fingerprint differently, so they are real misses).
        mixed_stream: List[Dict[str, object]] = []
        fresh = 0
        for index in range(len(slate) * 3):
            benchmark = slate[index % len(slate)]
            if index % 10 < 3:
                fresh += 1
                mixed_stream.append(request_payload(benchmark, seed=1000 + index))
            else:
                mixed_stream.append(request_payload(benchmark))
        mixed = timed_leg("mixed", mixed_stream, unique=len(slate) + fresh)

        store_snapshot = store.snapshot()
    finally:
        server.shutdown()
        server.server_close()
        server_thread.join(timeout=10)
        install_fabric(previous_fabric)
        fabric.shutdown()
        install_result_store(previous_store)
        if previous_env is None:
            os.environ.pop(STORE_ENV, None)
        else:
            os.environ[STORE_ENV] = previous_env
        store.close()
        shutil.rmtree(tempdir, ignore_errors=True)

    total_requests = sum(leg["requests"] for leg in legs)
    schema_valid = sum(leg["schema_valid"] for leg in legs)
    definitive = sum(leg["definitive"] for leg in legs)
    cold_rps = cold["requests_per_sec"]
    warm_rps = warm["requests_per_sec"]
    return {
        "schema_version": SERVE_BENCH_SCHEMA_VERSION,
        "suite": "serve",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "clients": clients,
        "workers": workers,
        "slate": slate,
        "legs": legs,
        "store": store_snapshot,
        "summary": {
            "requests": total_requests,
            "schema_valid": schema_valid,
            "all_schema_valid": schema_valid == total_requests,
            "all_definitive": definitive == total_requests,
            "cold_rps": cold_rps,
            "warm_rps": warm_rps,
            "gate_warm_vs_cold_throughput": (
                round(warm_rps / cold_rps, 3) if cold_rps else None
            ),
            "warm_hit_ratio": warm["hit_ratio"],
            "mixed_hit_ratio": mixed["hit_ratio"],
            "warm_p50_ms": warm["p50_ms"],
            "warm_p99_ms": warm["p99_ms"],
            "cold_p50_ms": cold["p50_ms"],
            "cold_p99_ms": cold["p99_ms"],
            "total_seconds": round(time.monotonic() - started, 4),
        },
    }


def render_serve_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the serve load report."""
    lines = [
        f"{'leg':12s} {'reqs':>5s} {'uniq':>5s} {'rps':>8s} "
        f"{'p50ms':>8s} {'p99ms':>8s} {'hits':>5s} {'ratio':>6s}"
    ]
    for leg in report["legs"]:
        lines.append(
            f"{leg['name']:12s} {leg['requests']:5d} {leg['unique']:5d} "
            f"{leg['requests_per_sec']:8.1f} {leg['p50_ms']:8.1f} "
            f"{leg['p99_ms']:8.1f} {leg['store_hits']:5d} {leg['hit_ratio']:6.2f}"
        )
    summary = report["summary"]
    gate = summary["gate_warm_vs_cold_throughput"]
    lines.append(
        f"  cold: {summary['cold_rps']:.1f} req/s   warm: "
        f"{summary['warm_rps']:.1f} req/s   warm/cold: "
        + (f"{gate:.1f}x" if gate is not None else "n/a")
    )
    lines.append(
        "  all schema-valid: "
        + ("yes" if summary["all_schema_valid"] else "NO")
        + "   all definitive: "
        + ("yes" if summary["all_definitive"] else "NO")
    )
    return "\n".join(lines)
