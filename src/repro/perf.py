"""The repeatable perf harnesses behind ``repro-nay bench``.

Two suites live here, selected with ``--suite``:

* ``fixpoint`` (default) — every workload measured for both fixpoint
  strategies (``worklist`` vs ``dense``, see :mod:`repro.gfa.fixpoint`)
  *in the same run*, written to ``BENCH_fixpoint.json``;
* ``logic`` — the DPLL(T) core harness: records the **query streams of real
  workloads** (the fig2 exact-Newton sweep, Table 1/2 benchmark checks) via
  :func:`repro.logic.solver.record_queries` and replays each stream through
  the incremental solver *and* the preserved pre-rewrite baseline
  (:mod:`repro.logic.reference`) in the same run, writing queries/sec,
  simplex pivots, lemma hits and cache hits to ``BENCH_logic.json``.
  Verdict agreement between the two stacks is asserted before timing.

Both artifacts are versioned; medians are compared like with like on the
same machine and interpreter state, giving future changes a perf trajectory
to compare against (see DESIGN.md).

Fixpoint workload groups:

* ``kleene``  — pure solver microbenchmark: Kleene iteration on synthetic
  chain systems over the Boolean semiring (the worst case for dense
  iteration: information flows one edge per round);
* ``fig2``    — the paper's Fig. 2 scaling workload: exact semi-linear-set
  solving (stratified Newton) of chain grammars, |N| x |E| sweep;
* ``fig3``    — the Fig. 3/5 scaling workload: the approximate product-domain
  engine on the same chain grammars;
* ``semilinear`` — micro-operations of the semi-linear domain (combine /
  extend / star / simplify);
* ``solve``   — end-to-end ``Solver.solve`` through the public api facade on
  a scaling benchmark (worklist strategy only; the facade always runs the
  default strategy);
* ``domains`` — the pluggable domain engines (``nayInt``, ``nayFin``) and
  the ``staged`` strategy checking a fixed benchmark slate through the api
  facade (worklist only).  The ``evaluations`` column records how many of
  the slate's instances the engine decided, so a precision regression in a
  cheap domain shows up in the artifact next to its timing.

Fairness: the process-wide memo tables (GFA cache, simplification memos) are
cleared before *every* timed repetition, so neither strategy warms the cache
for the other.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.cache import clear_cache, runtime_cache_stats
from repro.engine.registry import create_engine
from repro.gfa.equations import EquationSystem, Monomial, Polynomial
from repro.gfa.fixpoint import DENSE, STRATEGIES, WORKLIST, FixpointStats
from repro.gfa.kleene import solve_kleene
from repro.gfa.semiring import BooleanSemiring, SemiLinearSemiring
from repro.gfa.stratify import equation_strata
from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.logic.formulas import Formula
from repro.logic.reference import reference_check_sat
from repro.logic.solver import check_sat, record_queries, runtime_counters
from repro.unreal.approximate import solve_abstract_gfa
from repro.unreal.lia import solve_lia_gfa
from repro.suites import get_benchmark
from repro.suites.scaling import chain_grammar, example_set, scaling_benchmark
from repro.utils.errors import ReproError
from repro.utils.vectors import IntVector

#: Version of the BENCH_fixpoint.json schema.
BENCH_SCHEMA_VERSION = 1

#: Version of the BENCH_logic.json schema.
LOGIC_BENCH_SCHEMA_VERSION = 1

#: Default artifact paths (repo root when run from a checkout).
DEFAULT_BENCH_PATH = "BENCH_fixpoint.json"
DEFAULT_LOGIC_BENCH_PATH = "BENCH_logic.json"


# ---------------------------------------------------------------------------
# Workload definitions
# ---------------------------------------------------------------------------


def chain_boolean_system(length: int) -> EquationSystem:
    """``X_0 = X_1, ..., X_{n-1} = X_n, X_n = 1`` plus a self-loop on X_0.

    A dense solver needs ~n rounds of n evaluations to push ``true`` down the
    chain; a worklist solver needs ~2n evaluations total.
    """
    equations = {}
    for index in range(length):
        equations[f"X{index}"] = Polynomial((Monomial(True, (f"X{index + 1}",)),))
    equations[f"X{length}"] = Polynomial((Monomial(True, ()),))
    # Make X0 self-recursive so the system is not a simple DAG.
    equations["X0"] = Polynomial(
        (Monomial(True, ("X1",)), Monomial(True, ("X0", "X1")))
    )
    return EquationSystem(equations)


def _run_kleene(length: int, strategy: str) -> FixpointStats:
    system = chain_boolean_system(length)
    solution = solve_kleene(system, BooleanSemiring(), strategy=strategy)
    assert solution["X0"] is True  # sanity: the chain must saturate
    return solution.stats


#: Extra fig2 measurement leg: dense Jacobian but stratification kept on.
#: Stratification (§7) pre-dates the worklist work, so the report records it
#: as its own axis — ``dense`` is the historical full-system solve (single
#: stratum + dense Jacobian), ``dense_stratified`` isolates the pure
#: Jacobian-strategy effect, and the headline speedup is worklist vs dense.
DENSE_STRATIFIED = "dense_stratified"


def _run_fig2(nonterminals: int, examples: int, strategy: str) -> FixpointStats:
    entry = scaling_benchmark(nonterminals)
    if strategy == DENSE:
        stratify, solver_strategy = False, DENSE
    elif strategy == DENSE_STRATIFIED:
        stratify, solver_strategy = True, DENSE
    else:
        stratify, solver_strategy = True, WORKLIST
    solution = solve_lia_gfa(
        entry.problem.grammar,
        example_set(examples),
        stratify=stratify,
        strategy=solver_strategy,
    )
    assert not solution.start_value.is_empty()
    return FixpointStats(strategy, solution.iterations, solution.evaluations)


def _run_fig3(nonterminals: int, examples: int, strategy: str) -> FixpointStats:
    grammar = chain_grammar(max(1, nonterminals - 2))
    solution = solve_abstract_gfa(grammar, example_set(examples), strategy=strategy)
    return FixpointStats(strategy, solution.iterations, solution.evaluations)


def _semilinear_inputs(count: int, dimension: int = 2) -> List[SemiLinearSet]:
    values = []
    for index in range(count):
        offset = IntVector([index % 5, (2 * index) % 7])
        generators = (
            IntVector([1 + index % 3, index % 4]),
            IntVector([index % 2, 1 + index % 5]),
        )
        values.append(SemiLinearSet([LinearSet(offset, generators)], dimension))
    return values


def _run_semilinear(count: int, strategy: str) -> FixpointStats:
    """Micro: fold combine/extend/star/simplify over generated sets.

    The strategy knob is meaningless for pure domain operations; both legs run
    the identical loop so that the recorded "speedup" reflects the memoized
    simplification path (cleared before each repetition) staying at 1x-ish.
    """
    del strategy
    values = _semilinear_inputs(count)
    accumulated = SemiLinearSet.empty(2)
    operations = 0
    for value in values:
        accumulated = accumulated.combine(value).simplify()
        operations += 2
    product = values[0]
    for value in values[1:]:
        product = product.extend(value).simplify()
        operations += 2
    star = accumulated.star()
    operations += 1
    assert star.linear_sets
    return FixpointStats(WORKLIST, 1, operations)


class Workload:
    """One named, parameterised measurement."""

    def __init__(
        self,
        name: str,
        group: str,
        run: Callable[[str], FixpointStats],
        strategies: Sequence[str] = STRATEGIES,
    ):
        self.name = name
        self.group = group
        self.run = run
        self.strategies = tuple(strategies)


def _solver_workload() -> Workload:
    from repro.api import Solver

    def run(strategy: str) -> FixpointStats:
        del strategy
        solver = Solver(engine="naySL", timeout_seconds=120.0)
        response = solver.solve("chain_14")
        assert response.error is None, response.error
        return FixpointStats(WORKLIST, 0, 0)

    return Workload("solve_end_to_end_chain14", "solve", run, strategies=(WORKLIST,))


#: Benchmark slate the ``domains`` workloads check (cheap-domain-friendly
#: instances plus one that forces escalation).
DOMAIN_BENCH_SLATE = ("plane1", "guard1", "mpg_guard1", "max2")


def _domain_engine_workload(engine_name: str) -> Workload:
    from repro.api import Solver

    def run(strategy: str) -> FixpointStats:
        del strategy
        solver = Solver(engine=engine_name, timeout_seconds=120.0)
        decided = 0
        for benchmark in DOMAIN_BENCH_SLATE:
            response = solver.check(benchmark)
            assert response.error is None, response.error
            assert response.verdict != "realizable", (
                f"{engine_name} claimed realizable on {benchmark}"
            )
            decided += response.verdict == "unrealizable"
        return FixpointStats(WORKLIST, 0, decided)

    return Workload(
        f"domains_{engine_name}", "domains", run, strategies=(WORKLIST,)
    )


def default_workloads(quick: bool = False) -> List[Workload]:
    """The standard suite; ``quick`` shrinks the sweep for CI smoke runs."""
    kleene_sizes = [64] if quick else [64, 256, 1024]
    fig2_points = [(14, 1)] if quick else [(14, 1), (20, 1), (26, 1), (14, 2), (20, 2)]
    fig3_points = [(14, 2)] if quick else [(14, 2), (20, 2), (26, 2), (14, 3), (20, 3)]
    micro_sizes = [16] if quick else [16, 48]

    workloads: List[Workload] = []
    for size in kleene_sizes:
        workloads.append(
            Workload(
                f"kleene_bool_chain_{size}",
                "kleene",
                lambda strategy, size=size: _run_kleene(size, strategy),
            )
        )
    for nonterminals, examples in fig2_points:
        workloads.append(
            Workload(
                f"fig2_newton_n{nonterminals}_e{examples}",
                "fig2",
                lambda strategy, n=nonterminals, e=examples: _run_fig2(n, e, strategy),
                strategies=(WORKLIST, DENSE, DENSE_STRATIFIED),
            )
        )
    for nonterminals, examples in fig3_points:
        workloads.append(
            Workload(
                f"fig3_abstract_n{nonterminals}_e{examples}",
                "fig3",
                lambda strategy, n=nonterminals, e=examples: _run_fig3(n, e, strategy),
            )
        )
    for size in micro_sizes:
        workloads.append(
            Workload(
                f"semilinear_micro_{size}",
                "semilinear",
                lambda strategy, size=size: _run_semilinear(size, strategy),
                strategies=(WORKLIST,),
            )
        )
    workloads.append(_solver_workload())
    for engine_name in ("nayInt", "nayFin", "staged"):
        workloads.append(_domain_engine_workload(engine_name))
    return workloads


# ---------------------------------------------------------------------------
# Measurement
# ---------------------------------------------------------------------------


def _measure(
    run: Callable[[str], FixpointStats], strategy: str, repetitions: int
) -> Dict[str, object]:
    seconds: List[float] = []
    stats = FixpointStats(strategy)
    for _ in range(repetitions):
        clear_cache()  # no strategy may warm the memo tables for the other
        started = time.perf_counter()
        stats = run(strategy)
        seconds.append(time.perf_counter() - started)
    return {
        "median_seconds": statistics.median(seconds),
        "min_seconds": min(seconds),
        "repetitions": repetitions,
        "iterations": stats.iterations,
        "evaluations": stats.evaluations,
    }


def run_perf_suite(
    repetitions: int = 3,
    quick: bool = False,
    workloads: Optional[Sequence[Workload]] = None,
) -> Dict[str, object]:
    """Run every workload under every strategy; return the report dict."""
    chosen = list(workloads) if workloads is not None else default_workloads(quick)
    rows: List[Dict[str, object]] = []
    for workload in chosen:
        row: Dict[str, object] = {"name": workload.name, "group": workload.group}
        for strategy in workload.strategies:
            row[strategy] = _measure(workload.run, strategy, repetitions)
        if WORKLIST in row and DENSE in row:
            worklist_seconds = row[WORKLIST]["median_seconds"]
            dense_seconds = row[DENSE]["median_seconds"]
            row["speedup"] = (
                dense_seconds / worklist_seconds if worklist_seconds > 0 else None
            )
            worklist_evals = row[WORKLIST]["evaluations"]
            dense_evals = row[DENSE]["evaluations"]
            row["evaluation_ratio"] = (
                dense_evals / worklist_evals if worklist_evals else None
            )
        rows.append(row)

    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "suite": "fixpoint",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "workloads": rows,
        "summary": _summarise(rows),
        "caches": runtime_cache_stats(),
    }
    return report


def _summarise(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    summary: Dict[str, object] = {}
    for group in ("kleene", "fig2", "fig3"):
        speedups = [
            row["speedup"]
            for row in rows
            if row["group"] == group and row.get("speedup") is not None
        ]
        ratios = [
            row["evaluation_ratio"]
            for row in rows
            if row["group"] == group and row.get("evaluation_ratio") is not None
        ]
        if speedups:
            summary[f"{group}_min_speedup"] = min(speedups)
            summary[f"{group}_median_speedup"] = statistics.median(speedups)
        if ratios:
            summary[f"{group}_max_evaluation_ratio"] = max(ratios)
    return summary


def render_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the report."""
    lines = [
        f"{'workload':32s} {'worklist':>10s} {'dense':>10s} {'speedup':>8s} "
        f"{'evals(w)':>9s} {'evals(d)':>9s}"
    ]
    for row in report["workloads"]:
        worklist = row.get(WORKLIST, {})
        dense = row.get(DENSE, {})

        def fmt_seconds(cell):
            return f"{cell['median_seconds']:.4f}" if cell else "-"

        speedup = row.get("speedup")
        lines.append(
            f"{row['name']:32s} {fmt_seconds(worklist):>10s} {fmt_seconds(dense):>10s} "
            f"{(f'{speedup:.1f}x' if speedup else '-'):>8s} "
            f"{(str(worklist.get('evaluations', '-')) if worklist else '-'):>9s} "
            f"{(str(dense.get('evaluations', '-')) if dense else '-'):>9s}"
        )
    for key, value in sorted(report["summary"].items()):
        lines.append(f"  {key}: {value:.2f}")
    return "\n".join(lines)


def write_report(report: Dict[str, object], path: str | Path) -> Path:
    target = Path(path)
    target.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return target


# ---------------------------------------------------------------------------
# The logic (DPLL(T) core) suite
# ---------------------------------------------------------------------------
#
# Each workload is a *captured query stream*: the exact sequence of formulas
# a real pipeline run hands to the solver, recorded once (untimed) and then
# replayed through the incremental core and the pre-rewrite reference stack.
# Replaying identical formula sequences is what makes the recorded speedup an
# apples-to-apples measure of the solver rewrite alone.


class LogicWorkload:
    """One named query-stream measurement."""

    def __init__(self, name: str, group: str, capture: Callable[[], List[Formula]]):
        self.name = name
        self.group = group
        self.capture = capture


def _capture_fig2_stream(
    points: Sequence[Tuple[int, int]]
) -> List[Formula]:
    """The solver queries of the fig2 exact-Newton scaling sweep.

    Every cell runs the full stratified Newton solve (subsumption-based
    simplification included), with cold caches per cell exactly like the
    experiment runner; the recorded stream is the concatenation over the
    ``|N| x |E|`` sweep.
    """
    sink: List[Formula] = []
    with record_queries(sink):
        for nonterminals, examples in points:
            clear_cache()
            entry = scaling_benchmark(nonterminals)
            solve_lia_gfa(
                entry.problem.grammar, example_set(examples), stratify=True
            )
    clear_cache()
    return sink


def _capture_check_stream(
    benchmark_name: str, suite: Optional[str] = None
) -> List[Formula]:
    """The solver queries of one exact naySL benchmark check.

    The Table 2 ``array_search`` family is the §7/§8 exact-Newton workload
    whose CLIA verdict extraction dominates solver time; the Table 1
    LimitedIf family exercises the 2^|E| comparison-abstraction queries.
    ``suite`` disambiguates names that appear in several suites (``ite1``
    exists in both LimitedPlus and LimitedIf).
    """
    benchmark = get_benchmark(benchmark_name, suite)
    engine = create_engine("naySL")
    clear_cache()
    sink: List[Formula] = []
    with record_queries(sink):
        engine.check(benchmark.problem, benchmark.witness_examples)
    clear_cache()
    return sink


def _capture_random_stream(count: int, seed: int = 0) -> List[Formula]:
    """Seeded random QF-LIA formulas (small Boolean structure over 3 vars).

    Every formula is *box-bounded* (``-8 <= v <= 8`` conjoined per
    variable): the pre-rewrite baseline's branch-and-bound can take minutes
    on unbounded random strips, and a benchmark that mostly measures one
    pathological query would say nothing about throughput.
    """
    import random

    from repro.logic.formulas import (
        BoolLit,
        atom_eq,
        atom_ge,
        atom_le,
        atom_lt,
        atom_ne,
        conjunction,
        disjunction,
    )
    from repro.logic.terms import LinearExpression

    rng = random.Random(seed)
    names = ["x", "y", "z"]
    makers = (atom_le, atom_lt, atom_eq, atom_ne)
    box = [
        atom
        for name in names
        for atom in (
            atom_ge(LinearExpression.variable(name), -8),
            atom_le(LinearExpression.variable(name), 8),
        )
    ]

    def random_atom() -> Formula:
        expression = LinearExpression(
            {name: rng.randint(-4, 4) for name in names}, rng.randint(-8, 8)
        )
        return rng.choice(makers)(expression, 0)

    formulas: List[Formula] = []
    while len(formulas) < count:
        clauses = [
            disjunction([random_atom() for _ in range(rng.randint(1, 3))])
            for _ in range(rng.randint(1, 4))
        ]
        formula = conjunction(clauses + box)
        if not isinstance(formula, BoolLit):
            formulas.append(formula)
    return formulas


def default_logic_workloads(quick: bool = False) -> List[LogicWorkload]:
    """The standard logic suite; ``quick`` shrinks it for CI smoke runs."""
    fig2_points = (
        [(8, 1), (14, 1), (8, 2), (14, 2), (8, 3), (14, 3)]
        if quick
        else [
            (8, 1), (14, 1), (20, 1), (26, 1), (32, 1),
            (8, 2), (14, 2), (20, 2), (26, 2), (32, 2),
            (8, 3), (14, 3), (20, 3), (26, 3), (32, 3),
        ]
    )
    workloads = [
        LogicWorkload(
            "fig2_newton_subsumption_sweep",
            "fig2",
            lambda points=tuple(fig2_points): _capture_fig2_stream(points),
        ),
        LogicWorkload(
            "random_qflia_200",
            "random",
            lambda: _capture_random_stream(200),
        ),
    ]
    table2 = ["array_search_8"] if quick else ["array_search_10", "array_search_13"]
    for name in table2:
        workloads.append(
            LogicWorkload(
                f"table2_clia_{name}",
                "table2",
                lambda name=name: _capture_check_stream(name),
            )
        )
    if not quick:
        workloads.append(
            LogicWorkload(
                "table1_limited_if_ite1",
                "table1",
                lambda: _capture_check_stream("ite1", suite="LimitedIf"),
            )
        )
    return workloads


#: Stat-counter keys reported per incremental replay.
_LOGIC_STAT_KEYS = (
    "theory_queries",
    "theory_cache_hits",
    "lemma_hits",
    "lemmas_learned",
    "simplex_pivots",
    "bb_nodes",
    "propagations",
    "core_probes",
)


def _replay_incremental(stream: Sequence[Formula]) -> List[bool]:
    return [check_sat(formula).is_sat for formula in stream]


def _replay_reference(stream: Sequence[Formula]) -> List[bool]:
    return [reference_check_sat(formula)[0] for formula in stream]


def _measure_logic_workload(
    workload: LogicWorkload, repetitions: int
) -> Dict[str, object]:
    stream = workload.capture()
    row: Dict[str, object] = {
        "name": workload.name,
        "group": workload.group,
        "queries": len(stream),
    }

    # Differential guard before timing: both stacks must agree on every
    # query, otherwise the bench result would be comparing wrong answers.
    clear_cache()
    if _replay_incremental(stream) != _replay_reference(stream):
        raise ReproError(
            f"solver verdict mismatch replaying workload {workload.name!r}"
        )

    incremental_seconds: List[float] = []
    reference_seconds: List[float] = []
    stats: Dict[str, int] = {}
    for _ in range(repetitions):
        clear_cache()  # each repetition replays the stream from cold caches
        before = runtime_counters()
        started = time.perf_counter()
        _replay_incremental(stream)
        incremental_seconds.append(time.perf_counter() - started)
        after = runtime_counters()
        stats = {key: after[key] - before.get(key, 0) for key in _LOGIC_STAT_KEYS}

        clear_cache()
        started = time.perf_counter()
        _replay_reference(stream)
        reference_seconds.append(time.perf_counter() - started)

    def leg(seconds: List[float]) -> Dict[str, object]:
        median = statistics.median(seconds)
        return {
            "median_seconds": median,
            "min_seconds": min(seconds),
            "queries_per_second": (len(stream) / median) if median > 0 else None,
            "repetitions": repetitions,
        }

    incremental = leg(incremental_seconds)
    incremental["stats"] = stats
    reference = leg(reference_seconds)
    row["incremental"] = incremental
    row["reference"] = reference
    inc_median = incremental["median_seconds"]
    row["speedup"] = (
        reference["median_seconds"] / inc_median if inc_median > 0 else None
    )
    return row


def run_logic_suite(
    repetitions: int = 3,
    quick: bool = False,
    workloads: Optional[Sequence[LogicWorkload]] = None,
) -> Dict[str, object]:
    """Replay every logic workload through both solver stacks; report."""
    chosen = (
        list(workloads) if workloads is not None else default_logic_workloads(quick)
    )
    rows = [_measure_logic_workload(workload, repetitions) for workload in chosen]
    report = {
        "schema_version": LOGIC_BENCH_SCHEMA_VERSION,
        "suite": "logic",
        "created_unix": int(time.time()),
        "repetitions": repetitions,
        "quick": quick,
        "workloads": rows,
        "summary": _summarise_logic(rows),
        "caches": runtime_cache_stats(),
    }
    return report


def _summarise_logic(rows: Sequence[Dict[str, object]]) -> Dict[str, object]:
    summary: Dict[str, object] = {}
    groups = sorted({row["group"] for row in rows})
    for group in groups:
        speedups = [
            row["speedup"]
            for row in rows
            if row["group"] == group and row.get("speedup") is not None
        ]
        if speedups:
            summary[f"{group}_min_speedup"] = min(speedups)
            summary[f"{group}_median_speedup"] = statistics.median(speedups)
    all_speedups = [row["speedup"] for row in rows if row.get("speedup") is not None]
    if all_speedups:
        summary["overall_median_speedup"] = statistics.median(all_speedups)
    return summary


def render_logic_report(report: Dict[str, object]) -> str:
    """A compact human-readable table of the logic report."""
    lines = [
        f"{'workload':34s} {'queries':>7s} {'inc q/s':>9s} {'ref q/s':>9s} "
        f"{'speedup':>8s} {'lemma':>6s} {'cache':>6s} {'pivots':>7s}"
    ]
    for row in report["workloads"]:
        incremental = row["incremental"]
        reference = row["reference"]
        stats = incremental.get("stats", {})

        def rate(cell):
            value = cell.get("queries_per_second")
            return f"{value:.0f}" if value else "-"

        speedup = row.get("speedup")
        lines.append(
            f"{row['name']:34s} {row['queries']:7d} {rate(incremental):>9s} "
            f"{rate(reference):>9s} {(f'{speedup:.1f}x' if speedup else '-'):>8s} "
            f"{stats.get('lemma_hits', 0):6d} {stats.get('theory_cache_hits', 0):6d} "
            f"{stats.get('simplex_pivots', 0):7d}"
        )
    for key, value in sorted(report["summary"].items()):
        lines.append(f"  {key}: {value:.2f}")
    return "\n".join(lines)
