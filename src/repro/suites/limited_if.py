"""The LimitedIf benchmark family (§8, Table 1 bottom half).

Each benchmark's grammar allows one fewer ``IfThenElse`` than the known
optimal solution of the underlying problem needs.  The named benchmarks carry
Table 1's statistics for their namesakes; the remaining entries
(``if_hard_*``) stand in for the LimitedIf benchmarks no tool solved.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.semantics.examples import ExampleSet
from repro.suites.base import (
    Benchmark,
    array_search_spec,
    array_sum_spec,
    bounded_ite_grammar,
    guarded_linear_spec,
    make_benchmark,
    max_spec,
)

SUITE = "LimitedIf"


def _paper(
    nonterminals: int,
    productions: int,
    variables: int,
    examples: Optional[float],
    nay_sl: Optional[float],
    nay_horn: Optional[float],
    nope: Optional[float],
) -> Dict[str, Optional[float]]:
    return {
        "nonterminals": nonterminals,
        "productions": productions,
        "variables": variables,
        "examples": examples,
        "naySL": nay_sl,
        "nayHorn": nay_horn,
        "nope": nope,
    }


#: Example sets that rule out every conditional-free affine combination for
#: the max2 benchmark (four examples, matching Table 1's |E| = 4 for max2).
_MAX2_WITNESS = ExampleSet.of(
    {"x": 0, "y": 1}, {"x": 1, "y": 0}, {"x": 1, "y": 1}, {"x": 2, "y": 0}
)

_MAX3_WITNESS = ExampleSet.of(
    {"x": 0, "y": 1, "z": 0},
    {"x": 1, "y": 0, "z": 0},
    {"x": 1, "y": 1, "z": 1},
    {"x": 2, "y": 0, "z": 0},
    {"x": 0, "y": 0, "z": 3},
)


def limited_if_suite() -> List[Benchmark]:
    """The 57 LimitedIf benchmarks."""
    benchmarks: List[Benchmark] = []

    # max2 / max3: max of 2 or 3 inputs with the conditional budget one short
    # (max2 needs one ite, max3 needs two).
    benchmarks.append(
        make_benchmark(
            "max2",
            SUITE,
            bounded_ite_grammar(["x", "y"], [0, 1], ite_budget=0, name="max2"),
            max_spec(["x", "y"]),
            "CLIA",
            _paper(1, 5, 2, 4, 0.13, 1.13, 1.48),
            witness_examples=_MAX2_WITNESS,
        )
    )
    # max3 and the LimitedIf search_2 variant need more examples than the
    # 2^|E| blow-up allows naySL (they are naySL timeouts in Table 1), so no
    # witness example set is recorded for them.
    benchmarks.append(
        make_benchmark(
            "max3",
            SUITE,
            bounded_ite_grammar(["x", "y", "z"], [0, 1], ite_budget=1, name="max3"),
            max_spec(["x", "y", "z"]),
            "CLIA",
            _paper(3, 15, 3, None, None, 9.67, 58.57),
            witness_examples=None,
        )
    )

    # sum_k_t: the array_sum specification needs one conditional per adjacent
    # pair; the budget is one short.
    sum_stats = {
        "sum_2_5": (2, 5, _paper(1, 5, 2, 3, 0.17, 0.61, 0.69)),
        "sum_2_15": (2, 15, _paper(1, 5, 2, 3, 0.17, 0.56, 0.87)),
        "sum_3_5": (3, 5, _paper(3, 15, 3, None, None, 17.85, 101.44)),
        "sum_3_15": (3, 15, _paper(3, 15, 3, None, None, 16.65, 134.87)),
    }
    for name, (count, threshold, stats) in sum_stats.items():
        variables = [f"x{i}" for i in range(1, count + 1)]
        grammar = bounded_ite_grammar(
            variables, [0, threshold], ite_budget=count - 2, name=name
        )
        # For the two-variable instances three examples suffice to prove
        # unrealizability; the three-variable instances need more examples
        # than naySL can afford (they are naySL timeouts in Table 1), so no
        # witness set is recorded and the harness runs the full CEGIS loop.
        witness = None
        if count == 2:
            witness = ExampleSet.of(
                {f"x{i}": threshold for i in range(1, count + 1)},
                {f"x{i}": 2 for i in range(1, count + 1)},
                {f"x{i}": (threshold + 1 if i == 1 else 0) for i in range(1, count + 1)},
            )
        benchmarks.append(
            make_benchmark(
                name,
                SUITE,
                grammar,
                array_sum_spec(count, threshold),
                "CLIA",
                stats,
                witness_examples=witness,
            )
        )

    # search_2: array_search needs two conditionals for two elements.
    benchmarks.append(
        make_benchmark(
            "search_2",
            SUITE,
            bounded_ite_grammar(["x1", "x2", "k"], [0, 1], ite_budget=1, name="search_2"),
            array_search_spec(2),
            "CLIA",
            _paper(3, 15, 3, None, None, 25.85, 112.78),
            witness_examples=None,
        )
    )

    # example1 and guard1..guard4: guarded linear functions needing one
    # conditional, with the conditional budget at zero.
    guard_stats = {
        "example1": (1, 1, _paper(3, 10, 2, 3, 0.14, 0.73, 1.12)),
        "guard1": (2, 2, _paper(1, 6, 2, 4, 0.13, 0.44, 0.43)),
        "guard2": (3, 2, _paper(1, 6, 2, 4, 0.22, 0.33, 0.49)),
        "guard3": (4, 3, _paper(1, 6, 2, 4, 0.16, 0.27, 0.46)),
        "guard4": (5, 3, _paper(1, 6, 2, 4, 0.11, 0.72, 0.58)),
        "ite1": (6, 4, _paper(3, 15, 3, None, None, 2.68, 369.57)),
    }
    for name, (threshold, constant, stats) in guard_stats.items():
        grammar = bounded_ite_grammar(
            ["x"], [0, 1, constant], ite_budget=0, name=name
        )
        spec = guarded_linear_spec("x", threshold, constant, 0)
        witness = ExampleSet.of(
            {"x": threshold - 1},
            {"x": threshold},
            {"x": threshold + 1},
            {"x": threshold - 2},
        )
        benchmarks.append(
            make_benchmark(
                name, SUITE, grammar, spec, "CLIA", stats, witness_examples=witness
            )
        )

    # The remaining LimitedIf benchmarks (unsolved by every tool in Table 1)
    # are represented by max_k / guarded targets with growing arity.
    index = 0
    while len(benchmarks) < 57:
        index += 1
        arity = 2 + (index % 4)
        variables = [f"x{i}" for i in range(1, arity + 1)]
        name = f"if_hard_{index}"
        grammar = bounded_ite_grammar(
            variables, [0, 1], ite_budget=max(0, arity - 2), name=name
        )
        benchmarks.append(
            make_benchmark(
                name,
                SUITE,
                grammar,
                max_spec(variables),
                "CLIA",
                _paper(arity, 5 * arity, arity, None, None, None, None),
            )
        )
    return benchmarks
