"""Benchmark suites used in the evaluation (§8).

The paper evaluates on 132 variants of the 60 CLIA SyGuS-competition
benchmarks, grouped into three families created by the quantitative-syntax
tool of Hu & D'Antoni (CAV 2018):

* **LimitedPlus** (30) — the grammar allows one fewer ``Plus`` than the
  known optimal solution needs;
* **LimitedIf** (57) — one fewer ``IfThenElse`` than needed;
* **LimitedConst** (45) — the constants available in the grammar are
  restricted below what the optimal solution uses.

The original ``.sl`` files are not redistributable here, so
:mod:`repro.suites` regenerates structurally equivalent families: the same
specification functions (max_k, array_search_k, array_sum_k_t, mpg_*, guards,
planes, ...), the same bounding construction for grammars, and the same
realizability status.  Each benchmark also records the statistics the paper
reports for its namesake (grammar sizes, |E|, per-tool solved/timeout and
times) so the experiment harness can print paper-vs-measured tables.

:mod:`repro.suites.scaling` additionally provides the synthetic grammars used
for the scaling studies of Figs. 2, 3 and 5.
"""

from repro.suites.base import Benchmark
from repro.suites.limited_plus import limited_plus_suite
from repro.suites.limited_if import limited_if_suite
from repro.suites.limited_const import limited_const_suite
from repro.suites.scaling import scaling_suite
from repro.suites.registry import (
    all_benchmarks,
    benchmark_examples,
    benchmarks_by_suite,
    get_benchmark,
)

__all__ = [
    "Benchmark",
    "limited_plus_suite",
    "limited_if_suite",
    "limited_const_suite",
    "scaling_suite",
    "all_benchmarks",
    "benchmark_examples",
    "benchmarks_by_suite",
    "get_benchmark",
]
