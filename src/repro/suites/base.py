"""Shared building blocks for the benchmark suites.

Grammar constructors:

* :func:`bounded_plus_grammar` — LIA/CLIA grammars that allow at most a fixed
  number of ``Plus`` operators in any derived term (the LimitedPlus
  construction);
* :func:`bounded_ite_grammar` — CLIA grammars that allow at most a fixed
  number of ``IfThenElse`` operators (the LimitedIf construction);
* :func:`const_restricted_grammar` — CLIA grammars with an unrestricted
  amount of structure but a restricted constant pool (the LimitedConst
  construction).

Specification constructors build the QF-LIA formulas of the underlying SyGuS
competition problems (max_k, array_search_k, array_sum_k_t, linear "plane"
functions, guarded linear functions, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grammar import alphabet as alph
from repro.grammar.alphabet import Sort
from repro.grammar.rtg import Nonterminal, Production, RegularTreeGrammar
from repro.logic.formulas import (
    Formula,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_le,
    atom_lt,
    conjunction,
    disjunction,
    implies,
)
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.sygus.spec import OUTPUT_VARIABLE, Specification


@dataclass
class Benchmark:
    """A benchmark: a SyGuS problem plus the statistics the paper reports."""

    name: str
    suite: str
    problem: SyGuSProblem
    expected_verdict: str = "unrealizable"
    #: Statistics from Table 1 / Table 2 for the benchmark's namesake, used by
    #: the experiment harness for paper-vs-measured comparisons.  Times are in
    #: seconds; None means the paper reports a timeout for that tool.
    paper: Dict[str, Optional[float]] = field(default_factory=dict)
    #: Example sets that suffice to prove unrealizability deterministically
    #: (used by the deterministic benchmark harness; the CEGIS loop discovers
    #: equivalent sets with random seeds).
    witness_examples: Optional[ExampleSet] = None

    def __str__(self) -> str:
        return f"{self.suite}/{self.name}"


# ---------------------------------------------------------------------------
# Specification constructors
# ---------------------------------------------------------------------------


def _out() -> LinearExpression:
    return LinearExpression.variable(OUTPUT_VARIABLE)


def _var(name: str) -> LinearExpression:
    return LinearExpression.variable(name)


def linear_spec(coefficients: Dict[str, int], constant: int) -> Specification:
    """``f(x) = sum coeff_i * x_i + constant`` (the "plane" benchmarks)."""
    expression = LinearExpression(coefficients, constant)
    variables = tuple(sorted(coefficients.keys()))
    return Specification(
        atom_eq(_out(), expression),
        variables,
        description=f"f = {expression}",
    )


def max_spec(variables: Sequence[str]) -> Specification:
    """``f(xs) = max(xs)``: at least every input and equal to one of them."""
    bounds = [atom_ge(_out(), _var(name)) for name in variables]
    witness = disjunction([atom_eq(_out(), _var(name)) for name in variables])
    return Specification(
        conjunction(bounds + [witness]),
        tuple(variables),
        description=f"f = max({', '.join(variables)})",
    )


def guarded_linear_spec(
    variable: str, threshold: int, low_constant: int, high_constant: int
) -> Specification:
    """``f(x) = x + low  if x < threshold else x + high`` (guard benchmarks)."""
    x = _var(variable)
    low_case = implies(atom_lt(x, threshold), atom_eq(_out(), x + low_constant))
    high_case = implies(atom_ge(x, threshold), atom_eq(_out(), x + high_constant))
    return Specification(
        conjunction([low_case, high_case]),
        (variable,),
        description=(
            f"f({variable}) = {variable}+{low_constant} if {variable}<{threshold} "
            f"else {variable}+{high_constant}"
        ),
    )


def array_search_spec(count: int) -> Specification:
    """The SyGuS ``array_search_n`` specification.

    Inputs are ``x1 < x2 < ... < xn`` (a sorted array) and a key ``k``; the
    output is the number of array elements strictly smaller than ``k`` (the
    insertion point), required only when the array is sorted and the key
    avoids ties.
    """
    variables = tuple(f"x{i}" for i in range(1, count + 1)) + ("k",)
    key = _var("k")
    sortedness = conjunction(
        [atom_lt(_var(f"x{i}"), _var(f"x{i + 1}")) for i in range(1, count)]
    )
    cases: List[Formula] = []
    cases.append(implies(atom_lt(key, _var("x1")), atom_eq(_out(), 0)))
    for index in range(1, count):
        cases.append(
            implies(
                conjunction(
                    [atom_gt(key, _var(f"x{index}")), atom_lt(key, _var(f"x{index + 1}"))]
                ),
                atom_eq(_out(), index),
            )
        )
    cases.append(implies(atom_gt(key, _var(f"x{count}")), atom_eq(_out(), count)))
    return Specification(
        implies(sortedness, conjunction(cases)),
        variables,
        description=f"array_search_{count}",
    )


def array_sum_spec(count: int, threshold: int) -> Specification:
    """The SyGuS ``array_sum_n_t`` specification.

    The output is ``x_i + x_{i+1}`` for the first adjacent pair whose sum
    exceeds the threshold, and 0 when no pair does.
    """
    variables = tuple(f"x{i}" for i in range(1, count + 1))
    cases: List[Formula] = []
    no_earlier: List[Formula] = []
    for index in range(1, count):
        pair_sum = _var(f"x{index}") + _var(f"x{index + 1}")
        condition = conjunction(no_earlier + [atom_gt(pair_sum, threshold)])
        cases.append(implies(condition, atom_eq(_out(), pair_sum)))
        no_earlier.append(atom_le(pair_sum, threshold))
    cases.append(implies(conjunction(no_earlier), atom_eq(_out(), 0)))
    return Specification(
        conjunction(cases),
        variables,
        description=f"array_sum_{count}_{threshold}",
    )


def scaled_variable_spec(variable: str, factor: int, constant: int) -> Specification:
    """``f(x) = factor*x + constant`` (the running example has factor 2)."""
    return Specification(
        atom_eq(_out(), _var(variable).scale(factor) + constant),
        (variable,),
        description=f"f({variable}) = {factor}{variable}+{constant}",
    )


# ---------------------------------------------------------------------------
# Grammar constructors
# ---------------------------------------------------------------------------


def _leaf_productions(
    lhs: Nonterminal, variables: Sequence[str], constants: Sequence[int]
) -> List[Production]:
    productions = [Production(lhs, alph.var(name), ()) for name in variables]
    productions.extend(Production(lhs, alph.num(value), ()) for value in constants)
    return productions


def bounded_plus_grammar(
    variables: Sequence[str],
    constants: Sequence[int],
    plus_budget: int,
    with_ite: bool = False,
    comparison_constants: Sequence[int] = (),
    name: str = "limited_plus",
) -> RegularTreeGrammar:
    """A grammar whose terms contain at most ``plus_budget`` Plus operators.

    Nonterminal ``P_i`` derives terms using at most ``i`` additions; the start
    symbol is ``P_{plus_budget}``.  With ``with_ite`` the top level may also
    branch on comparisons between atoms (conditionals do not consume the Plus
    budget, matching the LimitedPlus construction).
    """
    atoms = Nonterminal("A", Sort.INT)
    levels = [Nonterminal(f"P{i}", Sort.INT) for i in range(plus_budget + 1)]
    nonterminals: List[Nonterminal] = [atoms] + levels
    productions: List[Production] = _leaf_productions(atoms, variables, constants)
    productions.append(Production(levels[0], alph.pass_through(Sort.INT), (atoms,)))
    for index in range(1, plus_budget + 1):
        productions.append(
            Production(levels[index], alph.plus(2), (atoms, levels[index - 1]))
        )
        productions.append(
            Production(levels[index], alph.pass_through(Sort.INT), (levels[index - 1],))
        )
    start = levels[plus_budget]

    if with_ite:
        guard = Nonterminal("B", Sort.BOOL)
        top = Nonterminal("Start", Sort.INT)
        nonterminals = [top, guard] + nonterminals
        productions.append(Production(top, alph.pass_through(Sort.INT), (start,)))
        productions.append(Production(top, alph.if_then_else(), (guard, start, top)))
        productions.append(Production(guard, alph.less_eq(), (atoms, atoms)))
        productions.append(Production(guard, alph.less_than(), (atoms, atoms)))
        productions.append(Production(guard, alph.and_(), (guard, guard)))
        comparison_nts = []
        for value in comparison_constants:
            constant_nt = Nonterminal(f"C{value}", Sort.INT)
            comparison_nts.append(constant_nt)
            productions.append(Production(constant_nt, alph.num(value), ()))
            productions.append(Production(guard, alph.less_than(), (atoms, constant_nt)))
        nonterminals.extend(comparison_nts)
        start = top

    return RegularTreeGrammar(nonterminals, start, productions, name=name)


def bounded_ite_grammar(
    variables: Sequence[str],
    constants: Sequence[int],
    ite_budget: int,
    plus_depth: int = 1,
    name: str = "limited_if",
) -> RegularTreeGrammar:
    """A grammar whose terms contain at most ``ite_budget`` IfThenElse operators.

    Nonterminal ``I_i`` derives terms with at most ``i`` conditionals; the
    arithmetic layer allows sums of up to ``plus_depth + 1`` atoms (the
    LimitedIf family does not restrict Plus, but keeping the arithmetic layer
    shallow keeps grammar sizes close to the originals).
    """
    atoms = Nonterminal("A", Sort.INT)
    arith = Nonterminal("E", Sort.INT)
    guard = Nonterminal("B", Sort.BOOL)
    levels = [Nonterminal(f"I{i}", Sort.INT) for i in range(ite_budget + 1)]
    nonterminals = [levels[-1]] + levels[:-1] + [guard, arith, atoms]

    productions: List[Production] = _leaf_productions(atoms, variables, constants)
    productions.append(Production(arith, alph.pass_through(Sort.INT), (atoms,)))
    productions.append(Production(arith, alph.plus(2), (atoms, arith)))
    productions.append(Production(guard, alph.less_eq(), (arith, arith)))
    productions.append(Production(guard, alph.less_than(), (arith, arith)))
    productions.append(Production(levels[0], alph.pass_through(Sort.INT), (arith,)))
    for index in range(1, ite_budget + 1):
        productions.append(
            Production(
                levels[index],
                alph.if_then_else(),
                (guard, levels[index - 1], levels[index - 1]),
            )
        )
        productions.append(
            Production(levels[index], alph.pass_through(Sort.INT), (levels[index - 1],))
        )
    return RegularTreeGrammar(
        nonterminals, levels[ite_budget], productions, name=name
    )


def const_restricted_grammar(
    variables: Sequence[str],
    constants: Sequence[int],
    with_ite: bool = True,
    name: str = "limited_const",
) -> RegularTreeGrammar:
    """A full CLIA grammar whose constant pool is restricted to ``constants``."""
    start = Nonterminal("Start", Sort.INT)
    guard = Nonterminal("B", Sort.BOOL)
    nonterminals = [start, guard] if with_ite else [start]
    productions: List[Production] = _leaf_productions(start, variables, constants)
    productions.append(Production(start, alph.plus(2), (start, start)))
    if with_ite:
        productions.append(Production(start, alph.if_then_else(), (guard, start, start)))
        productions.append(Production(guard, alph.less_eq(), (start, start)))
        productions.append(Production(guard, alph.less_than(), (start, start)))
    return RegularTreeGrammar(nonterminals, start, productions, name=name)


def make_benchmark(
    name: str,
    suite: str,
    grammar: RegularTreeGrammar,
    spec: Specification,
    logic: str,
    paper: Dict[str, Optional[float]],
    witness_examples: Optional[ExampleSet] = None,
    expected_verdict: str = "unrealizable",
) -> Benchmark:
    """Package a grammar and a spec into a :class:`Benchmark`."""
    problem = SyGuSProblem(name=name, grammar=grammar, spec=spec, logic=logic)
    return Benchmark(
        name=name,
        suite=suite,
        problem=problem,
        expected_verdict=expected_verdict,
        paper=paper,
        witness_examples=witness_examples,
    )
