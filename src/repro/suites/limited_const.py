"""The LimitedConst benchmark family (§8, Table 2 / Appendix A).

Each benchmark's grammar is a full CLIA grammar whose constant pool is
restricted below what the optimal solution of the underlying problem needs.
All 45 entries of Table 2 are represented; every tool solved every
LimitedConst benchmark in the paper, so all entries carry per-tool times.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.semantics.examples import ExampleSet
from repro.suites.base import (
    Benchmark,
    array_search_spec,
    array_sum_spec,
    const_restricted_grammar,
    guarded_linear_spec,
    linear_spec,
    make_benchmark,
    scaled_variable_spec,
)

SUITE = "LimitedConst"


def _paper(
    nonterminals: int,
    productions: int,
    variables: int,
    examples: int,
    nay_sl: float,
    nay_horn: float,
    nope: float,
) -> Dict[str, Optional[float]]:
    return {
        "nonterminals": nonterminals,
        "productions": productions,
        "variables": variables,
        "examples": examples,
        "naySL": nay_sl,
        "nayHorn": nay_horn,
        "nope": nope,
    }


#: Table 2 rows: name -> (|N|, |delta|, |V|, |E|, naySL, nayHorn, nope).
_TABLE2 = {
    "array_search_2": (2, 10, 3, 2, 0.17, 0.04, 0.78),
    "array_search_3": (2, 11, 4, 2, 0.30, 0.04, 1.26),
    "array_search_4": (2, 12, 5, 2, 0.47, 0.01, 1.25),
    "array_search_5": (2, 13, 6, 2, 0.57, 0.04, 1.01),
    "array_search_6": (2, 14, 7, 2, 0.77, 0.03, 0.87),
    "array_search_7": (2, 15, 8, 2, 0.97, 0.03, 0.85),
    "array_search_8": (2, 16, 9, 2, 1.28, 0.04, 0.97),
    "array_search_9": (2, 17, 10, 2, 1.58, 0.04, 0.70),
    "array_search_10": (2, 18, 11, 2, 1.88, 0.04, 0.80),
    "array_search_11": (2, 19, 12, 2, 2.21, 0.01, 1.09),
    "array_search_12": (2, 20, 13, 2, 2.62, 0.02, 1.13),
    "array_search_13": (2, 21, 14, 2, 3.05, 0.05, 0.73),
    "array_search_14": (2, 22, 15, 2, 3.49, 0.05, 0.77),
    "array_search_15": (2, 23, 16, 2, 3.79, 0.03, 1.06),
    "array_sum_2_5": (2, 9, 2, 2, 0.13, 0.04, 1.30),
    "array_sum_2_15": (2, 9, 2, 2, 0.14, 0.01, 1.46),
    "array_sum_3_5": (2, 10, 3, 2, 0.07, 0.01, 1.31),
    "array_sum_3_15": (2, 10, 3, 2, 0.07, 0.04, 1.28),
    "array_sum_4_5": (2, 11, 4, 2, 0.13, 0.03, 2.52),
    "array_sum_4_15": (2, 11, 4, 2, 0.34, 0.05, 1.35),
    "array_sum_5_5": (2, 12, 5, 2, 0.07, 0.02, 1.41),
    "array_sum_5_15": (2, 12, 5, 2, 0.34, 0.07, 1.43),
    "array_sum_6_5": (2, 13, 6, 2, 0.14, 0.10, 2.37),
    "array_sum_6_15": (2, 13, 6, 2, 0.34, 0.02, 1.56),
    "array_sum_7_5": (2, 14, 7, 2, 0.14, 0.01, 0.76),
    "array_sum_7_15": (2, 14, 7, 2, 0.34, 0.08, 1.87),
    "array_sum_8_5": (2, 15, 8, 2, 0.07, 0.09, 1.33),
    "array_sum_8_15": (2, 15, 8, 2, 0.13, 0.10, 1.53),
    "array_sum_9_5": (2, 16, 9, 2, 0.07, 0.01, 1.50),
    "array_sum_9_15": (2, 16, 9, 2, 0.34, 0.03, 1.44),
    "array_sum_10_5": (2, 17, 10, 2, 0.07, 0.03, 2.29),
    "array_sum_10_15": (2, 17, 10, 2, 0.27, 0.07, 0.87),
    "mpg_example1": (2, 9, 2, 1, 0.07, 0.05, 0.36),
    "mpg_example2": (2, 9, 3, 3, 5.17, 0.09, 0.50),
    "mpg_example3": (2, 10, 3, 1, 0.07, 0.03, 0.57),
    "mpg_example4": (2, 11, 4, 1, 0.07, 0.04, 0.44),
    "mpg_example5": (2, 9, 2, 1, 0.01, 0.08, 0.99),
    "mpg_guard1": (2, 10, 3, 3, 15.84, 0.01, 3.08),
    "mpg_guard2": (2, 10, 3, 3, 16.44, 0.03, 2.49),
    "mpg_guard3": (2, 10, 3, 3, 15.57, 0.08, 0.44),
    "mpg_guard4": (2, 10, 3, 3, 15.70, 1.44, 24.18),
    "mpg_ite1": (2, 10, 3, 1, 0.01, 0.02, 0.33),
    "mpg_ite2": (2, 10, 3, 1, 0.07, 0.18, 0.41),
    "mpg_plane2": (2, 10, 3, 1, 0.07, 0.12, 0.47),
    "mpg_plane3": (2, 10, 3, 1, 0.07, 0.08, 0.74),
}


def _even_array_witness(count: int) -> ExampleSet:
    """A sorted all-even array with an odd key: the required insertion index
    is 1, which no sum of even inputs (plus the odd key or zero) can equal."""
    assignment = {f"x{i}": 2 * i for i in range(1, count + 1)}
    assignment["k"] = 3
    return ExampleSet.of(assignment)


def _sum_witness(count: int, threshold: int) -> ExampleSet:
    """Two examples that no restricted-constant term can satisfy together.

    The low example is a positive scaling of the high one, so every guard the
    constant-free grammar can build (a homogeneous comparison) has the same
    truth value on both examples and conditionals cannot distinguish them;
    but the required outputs (a pair sum vs 0) are not related by the same
    scaling, ruling out every homogeneous linear term as well.
    """
    high = {f"x{i}": (threshold if i <= 2 else 0) for i in range(1, count + 1)}
    low = {f"x{i}": (1 if i <= 2 else 0) for i in range(1, count + 1)}
    return ExampleSet.of(high, low)


def limited_const_suite() -> List[Benchmark]:
    """The 45 LimitedConst benchmarks (Table 2)."""
    benchmarks: List[Benchmark] = []
    for name, stats in _TABLE2.items():
        paper = _paper(*stats)
        if name.startswith("array_search_"):
            count = int(name.rsplit("_", 1)[1])
            variables = [f"x{i}" for i in range(1, count + 1)] + ["k"]
            grammar = const_restricted_grammar(variables, [0], name=name)
            spec = array_search_spec(count)
            witness = _even_array_witness(count)
        elif name.startswith("array_sum_"):
            parts = name.split("_")
            count, threshold = int(parts[2]), int(parts[3])
            variables = [f"x{i}" for i in range(1, count + 1)]
            grammar = const_restricted_grammar(variables, [0], name=name)
            spec = array_sum_spec(count, threshold)
            witness = _sum_witness(count, threshold)
        elif name.startswith("mpg_example"):
            index = int(name[-1])
            variables = ["x", "y"]
            grammar = const_restricted_grammar(variables, [0], name=name)
            spec = linear_spec({"x": 1, "y": 1}, index)
            witness = ExampleSet.of({"x": 0, "y": 0})
        elif name.startswith("mpg_guard"):
            index = int(name[-1])
            grammar = const_restricted_grammar(["x"], [0], name=name)
            spec = guarded_linear_spec("x", index, index, 0)
            witness = ExampleSet.of({"x": 0}, {"x": index + 1}, {"x": index - 1})
        elif name.startswith("mpg_ite"):
            index = int(name[-1])
            grammar = const_restricted_grammar(["x"], [0, 2], name=name)
            spec = guarded_linear_spec("x", 0, 2 * index + 1, 2 * index + 1)
            witness = ExampleSet.of({"x": 0})
        else:  # mpg_plane2 / mpg_plane3
            index = int(name[-1])
            grammar = const_restricted_grammar(["x"], [0], name=name)
            spec = scaled_variable_spec("x", index, index)
            witness = ExampleSet.of({"x": 0})
        benchmarks.append(
            make_benchmark(name, SUITE, grammar, spec, "CLIA", paper, witness)
        )
    return benchmarks
