"""A registry over all benchmark suites, used by the CLI and the harness."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.suites.base import Benchmark
from repro.suites.limited_const import limited_const_suite
from repro.suites.limited_if import limited_if_suite
from repro.suites.limited_plus import limited_plus_suite
from repro.suites.scaling import scaling_suite
from repro.utils.errors import ReproError


def benchmarks_by_suite(include_scaling: bool = False) -> Dict[str, List[Benchmark]]:
    """The three evaluation suites (and optionally the scaling suite)."""
    suites = {
        "LimitedPlus": limited_plus_suite(),
        "LimitedIf": limited_if_suite(),
        "LimitedConst": limited_const_suite(),
    }
    if include_scaling:
        suites["Scaling"] = scaling_suite()
    return suites


def all_benchmarks(include_scaling: bool = False) -> List[Benchmark]:
    """All benchmarks, flattened (132 evaluation benchmarks by default)."""
    collected: List[Benchmark] = []
    for suite in benchmarks_by_suite(include_scaling).values():
        collected.extend(suite)
    return collected


def benchmark_examples(benchmark: Benchmark, fallback_count: int = 1):
    """The example set a deterministic sweep runs a benchmark on.

    The recorded witness examples when the benchmark has them (93 of the
    141 suite benchmarks do), otherwise a seeded deterministic set of
    ``fallback_count`` examples over the problem's variables — the shape
    the differential soundness tests and the capability matrix use, so
    "all 141 benchmarks" means the same thing everywhere.
    """
    from repro.semantics.examples import ExampleSet

    if benchmark.witness_examples is not None:
        return benchmark.witness_examples
    return ExampleSet().resized(
        benchmark.problem.variables, fallback_count, seed=0
    )


def get_benchmark(name: str, suite: Optional[str] = None) -> Benchmark:
    """Look a benchmark up by name (optionally disambiguated by suite)."""
    matches = [
        benchmark
        for benchmark in all_benchmarks(include_scaling=True)
        if benchmark.name == name and (suite is None or benchmark.suite == suite)
    ]
    if not matches:
        raise ReproError(f"unknown benchmark {name!r}")
    return matches[0]
