"""Synthetic scaling benchmarks for Figures 2, 3 and 5.

Figure 2 plots the time NaySL spends computing semi-linear sets against the
number of nonterminals |N| for |E| in {1, 2, 3, 4}; Figures 3 and 5 plot the
running time of NayHorn and NOPE against |E| for |N| in {1, 2, 3}.  The
workload is the natural generalisation of the paper's running example: chain
grammars whose terms all evaluate to multiples of ``length * x``
(``Start ::= Plus(S1, Start) | 0``, ``S1 ::= Plus(S2, x)``, ...,
``S_length ::= x``), with the specification ``f(x) = 2x + 2`` that such
grammars cannot meet.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.grammar import alphabet as alph
from repro.grammar.rtg import Nonterminal, Production, RegularTreeGrammar
from repro.semantics.examples import Example, ExampleSet
from repro.suites.base import Benchmark, make_benchmark, scaled_variable_spec

SUITE = "Scaling"


def chain_grammar(length: int, name: str = "chain") -> RegularTreeGrammar:
    """The footnote-1 expansion of the running example with ``length`` links.

    Terms of the grammar evaluate to ``k * length * x`` for ``k >= 0``; the
    grammar has ``length + 2`` nonterminals (Start, S1..S_length, and a shared
    nonterminal for the variable leaf).
    """
    start = Nonterminal("Start")
    links = [Nonterminal(f"S{i}") for i in range(1, length + 1)]
    variable_nt = Nonterminal("VX")
    nonterminals = [start] + links + [variable_nt]

    productions: List[Production] = [
        Production(start, alph.plus(2), (links[0], start)),
        Production(start, alph.num(0), ()),
        Production(variable_nt, alph.var("x"), ()),
    ]
    for index, link in enumerate(links):
        if index + 1 < len(links):
            productions.append(
                Production(link, alph.plus(2), (links[index + 1], variable_nt))
            )
        else:
            productions.append(Production(link, alph.var("x"), ()))
    return RegularTreeGrammar(nonterminals, start, productions, name=name)


def redundant_chain_grammar(
    length: int, fanout: int = 3, name: str = "redundant_chain"
) -> RegularTreeGrammar:
    """A chain grammar inflated with observationally-equal link copies.

    Every link ``S_i`` of :func:`chain_grammar` becomes ``fanout`` copies
    ``S_i_0 .. S_i_{fanout-1}`` that each reference *every* copy of the next
    link, so the grammar has ``O(length * fanout^2)`` productions — the
    grammar-scale slate for the tree-automaton perf suite.  Copies alternate
    the argument order of ``Plus`` (``Plus(next, x)`` vs ``Plus(x, next)``),
    so they are **not** structurally identical (language-preserving
    ``reduce`` merging cannot collapse them across parities) but evaluate
    identically on every example — exactly the redundancy
    observational-equivalence pruning exists to remove.  The generated
    language is unchanged: every term still evaluates to a multiple of
    ``length * x``.
    """
    start = Nonterminal("Start")
    copies = [
        [Nonterminal(f"S{i}_{j}") for j in range(fanout)]
        for i in range(1, length + 1)
    ]
    variable_nt = Nonterminal("VX")
    nonterminals = [start] + [nt for row in copies for nt in row] + [variable_nt]

    productions: List[Production] = [Production(start, alph.num(0), ())]
    productions.append(Production(variable_nt, alph.var("x"), ()))
    for first_copy in copies[0]:
        productions.append(Production(start, alph.plus(2), (first_copy, start)))
    for index, row in enumerate(copies):
        for copy_index, link in enumerate(row):
            if index + 1 < len(copies):
                for successor in copies[index + 1]:
                    args = (
                        (successor, variable_nt)
                        if copy_index % 2 == 0
                        else (variable_nt, successor)
                    )
                    productions.append(Production(link, alph.plus(2), args))
            else:
                productions.append(Production(link, alph.var("x"), ()))
    return RegularTreeGrammar(nonterminals, start, productions, name=name)


def redundant_expression_grammar(
    fanout: int = 3, name: str = "redundant_expr"
) -> RegularTreeGrammar:
    """``fanout`` language-equal copies of a small LIA expression grammar.

    ``Start ::= E_0`` and every ``E_j ::= x | 0 | 1 | Plus(E_k, E_l) |
    Minus(E_k, E_l)`` over all copy pairs ``(k, l)`` — ``2 * fanout^2 + 3``
    productions per copy, all generating the same expression language.  The
    enumerator benchmark workload: terms here have genuinely diverse
    behavior vectors (unlike the chain grammars, whose terms are all
    multiples of ``length * x``), so bottom-up enumeration keeps many
    distinct candidates per size while a reference enumerator re-derives
    every copy's identical table ``fanout`` times over.
    """
    start = Nonterminal("Start")
    exprs = [Nonterminal(f"E{j}") for j in range(fanout)]
    productions: List[Production] = [Production(start, alph.pass_through(alph.Sort.INT), (exprs[0],))]
    for expr in exprs:
        productions.append(Production(expr, alph.var("x"), ()))
        productions.append(Production(expr, alph.num(0), ()))
        productions.append(Production(expr, alph.num(1), ()))
        for left in exprs:
            for right in exprs:
                productions.append(Production(expr, alph.plus(2), (left, right)))
                productions.append(Production(expr, alph.minus(), (left, right)))
    return RegularTreeGrammar([start] + exprs, start, productions, name=name)


def redundant_expression_benchmark(fanout: int = 3) -> Benchmark:
    """``f(x) = 2x + 2`` over the redundant expression grammar.

    Unlike the chain benchmarks this spec is *realizable*
    (``Plus(Plus(x, x), Plus(1, 1))``), and deep enough that a size-ordered
    search keeps many distinct candidates before reaching it — the shape
    the enumerator benchmark wants.
    """
    grammar = redundant_expression_grammar(fanout, name=f"redundant_expr_{fanout}")
    spec = scaled_variable_spec("x", 2, 2)
    return make_benchmark(
        f"redundant_expr_{fanout}",
        SUITE,
        grammar,
        spec,
        "LIA",
        {
            "nonterminals": grammar.num_nonterminals,
            "productions": grammar.num_productions,
            "fanout": fanout,
        },
        witness_examples=example_set(1),
    )


def redundant_chain_benchmark(length: int, fanout: int = 3) -> Benchmark:
    """The unrealizable ``f(x) = 2x + 2`` spec over a redundant chain."""
    grammar = redundant_chain_grammar(
        length, fanout, name=f"redundant_chain_{length}x{fanout}"
    )
    spec = scaled_variable_spec("x", 2, 2)
    return make_benchmark(
        f"redundant_chain_{length}x{fanout}",
        SUITE,
        grammar,
        spec,
        "LIA",
        {
            "nonterminals": grammar.num_nonterminals,
            "productions": grammar.num_productions,
            "fanout": fanout,
        },
        witness_examples=example_set(1),
    )


def example_set(size: int) -> ExampleSet:
    """The example sets used for the scaling sweeps: x = 1, 2, 3, ..."""
    return ExampleSet(Example.of({"x": value}) for value in range(1, size + 1))


def large_example_set(
    count: int,
    variables: Tuple[str, ...] = ("x",),
    seed: int = 0,
    low: int = -1_000_000,
    high: int = 1_000_000,
) -> ExampleSet:
    """A deterministic pseudo-random example set of *exactly* ``count``.

    ``example_set`` enumerates ``x = 1..n``, which keeps interval bounds
    artificially tidy; the columnar perf suite and the differential tests
    want *unstructured* inputs at sizes up to a few thousand.  The values
    are drawn from ``random.Random(seed)``; duplicate assignments are
    re-drawn (``ExampleSet`` is duplicate-free), so the same ``(count,
    variables, seed, low, high)`` always yields the same set and a longer
    set extends a shorter one prefix-for-prefix.
    """
    rng = random.Random(seed)
    seen = set()
    examples = []
    while len(examples) < count:
        assignment = {name: rng.randint(low, high) for name in variables}
        key = tuple(sorted(assignment.items()))
        if key in seen:
            continue
        seen.add(key)
        examples.append(Example.of(assignment))
    result = ExampleSet(examples)
    assert len(result) == count
    return result


def scaling_benchmark(num_nonterminals: int) -> Benchmark:
    """One scaling benchmark with approximately ``num_nonterminals`` nonterminals."""
    length = max(1, num_nonterminals - 2)
    grammar = chain_grammar(length, name=f"chain_{num_nonterminals}")
    spec = scaled_variable_spec("x", 2, 2)
    return make_benchmark(
        f"chain_{num_nonterminals}",
        SUITE,
        grammar,
        spec,
        "LIA",
        {"nonterminals": grammar.num_nonterminals},
        witness_examples=example_set(1),
    )


def scaling_suite(sizes: Optional[List[int]] = None) -> List[Benchmark]:
    """The grammars used for Fig. 2 (|N| sweep) and Figs. 3/5 (|E| sweep)."""
    if sizes is None:
        sizes = [3, 5, 8, 11, 14, 17, 20, 23, 26]
    return [scaling_benchmark(size) for size in sizes]
