"""The LimitedPlus benchmark family (§8, Table 1 top half).

Each benchmark's grammar allows one fewer ``Plus`` operator than the known
optimal solution of the underlying SyGuS-competition problem needs, which
makes the problem unrealizable.  The named benchmarks carry the statistics
Table 1 reports for their namesakes (grammar size, number of examples, and
the per-tool running times, with ``None`` denoting a timeout); the remaining
entries (``plus_hard_*``) stand in for the 18 LimitedPlus benchmarks no tool
solved within the timeout.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.semantics.examples import ExampleSet
from repro.suites.base import (
    Benchmark,
    bounded_plus_grammar,
    guarded_linear_spec,
    linear_spec,
    make_benchmark,
    max_spec,
    scaled_variable_spec,
    array_search_spec,
    array_sum_spec,
)

SUITE = "LimitedPlus"


def _paper(
    nonterminals: int,
    productions: int,
    variables: int,
    examples: float,
    nay_sl: Optional[float],
    nay_horn: Optional[float],
    nope: Optional[float],
) -> Dict[str, Optional[float]]:
    return {
        "nonterminals": nonterminals,
        "productions": productions,
        "variables": variables,
        "examples": examples,
        "naySL": nay_sl,
        "nayHorn": nay_horn,
        "nope": nope,
    }


def limited_plus_suite() -> List[Benchmark]:
    """The 30 LimitedPlus benchmarks."""
    benchmarks: List[Benchmark] = []

    # guard1..guard4: guarded linear functions f(x) = x+k if x<k else x, with
    # the grammar's Plus budget one below k (so the then-branch constant k
    # cannot be assembled).
    guard_stats = {
        "guard1": (2, _paper(7, 24, 3, 2, 0.24, None, None)),
        "guard2": (3, _paper(9, 34, 3, 3, 12.86, None, None)),
        "guard3": (4, _paper(11, 41, 3, 1, 0.07, None, None)),
        "guard4": (5, _paper(11, 72, 3, 3.5, 147.50, None, None)),
    }
    for name, (constant, stats) in guard_stats.items():
        grammar = bounded_plus_grammar(
            ["x"],
            [0, 1],
            plus_budget=max(0, constant - 2),
            with_ite=True,
            comparison_constants=[constant],
            name=name,
        )
        spec = guarded_linear_spec("x", constant, constant, 0)
        benchmarks.append(
            make_benchmark(
                name,
                SUITE,
                grammar,
                spec,
                "CLIA",
                stats,
                witness_examples=ExampleSet.of({"x": 0}),
            )
        )

    # plane1..plane3: purely linear targets f(x) = k*x + k; the grammar's Plus
    # budget is one too small to build the needed sum of atoms.
    plane_stats = {
        "plane1": (2, _paper(2, 5, 2, 1, 0.07, 0.55, 0.69)),
        "plane2": (8, _paper(17, 60, 2, 1.6, 0.90, None, None)),
        "plane3": (14, _paper(29, 122, 2, 1.5, 15.73, None, None)),
    }
    for name, (factor, stats) in plane_stats.items():
        grammar = bounded_plus_grammar(
            ["x"], [0], plus_budget=factor - 2, with_ite=False, name=name
        )
        spec = scaled_variable_spec("x", factor, 0)
        benchmarks.append(
            make_benchmark(
                name,
                SUITE,
                grammar,
                spec,
                "LIA",
                stats,
                witness_examples=ExampleSet.of({"x": 1}),
            )
        )

    # ite1, ite2: conditional targets whose branches each need one more Plus
    # than the budget allows.
    ite_stats = {
        "ite1": (3, _paper(7, 2, 3, 2, 1.05, None, None)),
        "ite2": (4, _paper(9, 34, 3, 4, 294.88, None, None)),
    }
    for name, (constant, stats) in ite_stats.items():
        grammar = bounded_plus_grammar(
            ["x"],
            [0, 1],
            plus_budget=max(0, constant - 2),
            with_ite=True,
            comparison_constants=[0],
            name=name,
        )
        spec = guarded_linear_spec("x", 0, constant, constant)
        benchmarks.append(
            make_benchmark(
                name,
                SUITE,
                grammar,
                spec,
                "CLIA",
                stats,
                witness_examples=ExampleSet.of({"x": 0}),
            )
        )

    # sum_2_5: the array_sum spec with a Plus budget too small to produce the
    # pair sum and the comparison threshold.
    grammar = bounded_plus_grammar(
        ["x1", "x2"],
        [0, 1],
        plus_budget=1,
        with_ite=True,
        comparison_constants=[5],
        name="sum_2_5",
    )
    benchmarks.append(
        make_benchmark(
            "sum_2_5",
            SUITE,
            grammar,
            array_sum_spec(2, 5),
            "CLIA",
            _paper(11, 40, 2, 4, 15.48, None, None),
            witness_examples=ExampleSet.of(
                {"x1": 4, "x2": 4}, {"x1": 2, "x2": 2}, {"x1": 6, "x2": 0}
            ),
        )
    )

    # search_2, search_3: array_search with a Plus budget of zero (the optimal
    # solutions need one addition to form index constants).
    search_stats = {
        "search_2": (2, _paper(5, 16, 3, 3, 1.21, None, None)),
        "search_3": (3, _paper(7, 25, 4, 4, 2.65, None, None)),
    }
    for name, (count, stats) in search_stats.items():
        variables = [f"x{i}" for i in range(1, count + 1)] + ["k"]
        grammar = bounded_plus_grammar(
            variables,
            [0],
            plus_budget=0,
            with_ite=True,
            comparison_constants=[],
            name=name,
        )
        spec = array_search_spec(count)
        witness = ExampleSet.of(
            {**{f"x{i}": 2 * i for i in range(1, count + 1)}, "k": 3}
        )
        benchmarks.append(
            make_benchmark(name, SUITE, grammar, spec, "CLIA", stats, witness)
        )

    # max2_plus: max of two inputs where the (artificially) required extra
    # addition is unavailable; stands in for the remaining named family.
    grammar = bounded_plus_grammar(
        ["x", "y"], [0], plus_budget=0, with_ite=True, name="max2_plus"
    )
    benchmarks.append(
        make_benchmark(
            "max2_plus",
            SUITE,
            grammar,
            linear_spec({"x": 1, "y": 1}, 1),
            "CLIA",
            _paper(4, 12, 2, 1, None, None, None),
            witness_examples=ExampleSet.of({"x": 1, "y": 1}),
        )
    )

    # The 17 remaining LimitedPlus benchmarks were solved by no tool within
    # the paper's timeout; they are represented by progressively larger
    # instances of the same construction.
    index = 0
    while len(benchmarks) < 30:
        index += 1
        factor = 5 + index
        name = f"plus_hard_{index}"
        grammar = bounded_plus_grammar(
            ["x", "y"],
            [0, 1],
            plus_budget=factor - 2,
            with_ite=True,
            comparison_constants=[factor],
            name=name,
        )
        spec = linear_spec({"x": factor, "y": 1}, factor)
        benchmarks.append(
            make_benchmark(
                name,
                SUITE,
                grammar,
                spec,
                "CLIA",
                _paper(3 + factor, 10 + 4 * factor, 2, None, None, None, None),
                witness_examples=ExampleSet.of({"x": 1, "y": 0}),
            )
        )
    return benchmarks
