"""Command line entry point: ``repro-nay`` (also ``python -m repro.cli``).

Subcommands:

* ``solve <file.sl>``       — run the NAY CEGIS loop on a SyGuS-IF problem;
* ``check <benchmark>``     — run one unrealizability check on a named
  benchmark's witness example set with a chosen engine (``--examples N``
  resizes the set deterministically);
* ``batch <dir>``           — solve every ``.sl`` file under a directory,
  optionally on a process pool (``--workers``) and/or with a multi-engine
  strategy (``--tool portfolio`` races, ``--tool staged`` escalates
  cheap-to-expensive);
* ``serve``                 — start the JSON HTTP endpoint
  (``POST /solve``, ``GET /engines``, ``GET /healthz``);
* ``list``                  — list the benchmark suites;
* ``engines``               — list the registered engines (+ the portfolio
  and staged strategies);
* ``domains``               — list the registered abstract domains;
* ``experiments <name>``    — shorthand for ``python -m repro.experiments``;
* ``bench``                 — run a perf harness (``--suite fixpoint``,
  ``logic``, ``domains`` or ``all``) and write its versioned
  ``BENCH_*.json`` artifact.

``solve``, ``check`` and ``batch`` accept ``--json`` to emit the versioned
wire format (:mod:`repro.api.wire`) instead of text.  All solving resolves
through :class:`repro.api.Solver`, so the CLI carries no engine/example/
timeout plumbing of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import experiments
from repro.api import PORTFOLIO_ENGINE, STAGED_ENGINE, SolveResponse, Solver
from repro.api.service import DEFAULT_HOST, DEFAULT_PORT, serve
from repro.domains.registry import domain_names
from repro.engine.registry import engine_names
from repro.semantics.examples import ExampleSet
from repro.suites import all_benchmarks


def _nonnegative(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("example count must be >= 0")
    return parsed


def _add_solving_arguments(parser: argparse.ArgumentParser, tools: List[str]) -> None:
    parser.add_argument("--tool", default="naySL", choices=tools)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--max-iterations", type=int, default=None, help="CEGIS iteration budget"
    )
    parser.add_argument(
        "--max-examples", type=int, default=None, help="cap the example set size"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the versioned JSON wire format"
    )


def _solver_for(arguments: argparse.Namespace) -> Solver:
    return Solver(
        engine=arguments.tool,
        timeout_seconds=arguments.timeout,
        seed=arguments.seed,
        max_iterations=arguments.max_iterations,
        max_examples=arguments.max_examples,
    )


def _emit(response: SolveResponse, as_json: bool) -> int:
    """Print one response (text or wire form); non-zero on error responses."""
    if as_json:
        print(response.to_json_text(indent=2))
        return 1 if response.error else 0
    if response.error:
        print(response.error, file=sys.stderr)
        return 1
    if response.kind == "check":
        examples = ExampleSet.from_dicts(response.witness_examples)
        print(f"verdict: {response.verdict} on {examples}")
    else:
        print(f"verdict: {response.verdict}")
        if response.solution is not None:
            print(f"solution: {response.solution}")
        print(f"examples used: {response.num_examples}")
    if response.engines_raced:
        print(f"winner: {response.engine} (raced {', '.join(response.engines_raced)})")
    print(f"time: {response.elapsed_seconds:.2f}s")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    engines = engine_names()
    tools = engines + [PORTFOLIO_ENGINE, STAGED_ENGINE]
    parser = argparse.ArgumentParser(prog="repro-nay", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run the CEGIS loop on a .sl file")
    solve.add_argument("path")
    _add_solving_arguments(solve, tools)

    check = subparsers.add_parser("check", help="check a named benchmark")
    check.add_argument("benchmark")
    _add_solving_arguments(check, tools)
    check.add_argument(
        "--examples",
        type=_nonnegative,
        default=None,
        help="resize the witness example set (truncate or top up, seeded)",
    )

    batch = subparsers.add_parser("batch", help="solve every .sl file under a directory")
    batch.add_argument("directory")
    _add_solving_arguments(batch, tools)
    batch.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = in-process)"
    )

    server = subparsers.add_parser("serve", help="start the JSON HTTP endpoint")
    server.add_argument("--host", default=DEFAULT_HOST)
    server.add_argument("--port", type=int, default=DEFAULT_PORT)
    server.add_argument(
        "--timeout", type=float, default=600.0, help="default per-request timeout"
    )

    subparsers.add_parser("list", help="list all benchmarks")
    subparsers.add_parser("engines", help="list the registered engines")
    subparsers.add_parser("domains", help="list the registered abstract domains")

    experiment = subparsers.add_parser("experiments", help="regenerate tables/figures")
    experiment.add_argument("name", choices=sorted(experiments.EXPERIMENTS) + ["all"])
    experiment.add_argument("--full", action="store_true")
    experiment.add_argument("--workers", type=int, default=1)
    experiment.add_argument("--out", default=None)

    bench = subparsers.add_parser(
        "bench",
        help="run a perf harness and write its BENCH_*.json artifact",
    )
    bench.add_argument(
        "--suite",
        choices=["fixpoint", "logic", "domains", "all"],
        default="fixpoint",
        help="fixpoint: worklist-vs-dense strategies (BENCH_fixpoint.json); "
        "logic: incremental DPLL(T) core vs the pre-rewrite solver "
        "(BENCH_logic.json); domains: the columnar evaluation core over an "
        "example-count sweep (BENCH_domains.json); all: every suite",
    )
    bench.add_argument(
        "--repeat", type=int, default=3, help="timed repetitions per measurement"
    )
    bench.add_argument(
        "--quick", action="store_true", help="small sweep for CI smoke runs"
    )
    bench.add_argument(
        "--out",
        default=None,
        help="artifact path (defaults to the suite's BENCH_*.json; '-' to "
        "skip writing; only valid for a single suite)",
    )

    arguments = parser.parse_args(argv)

    if arguments.command == "solve":
        solver = _solver_for(arguments)
        response = solver.solve(Path(arguments.path), kind="solve")
        return _emit(response, arguments.json)

    if arguments.command == "check":
        solver = _solver_for(arguments)
        # Resolution failures (unknown benchmark, exhausted example top-up)
        # come back as verdict="error" responses; _emit routes them to
        # stderr with exit code 1.
        response = solver.solve(arguments.benchmark, example_count=arguments.examples)
        if response.kind == "solve" and not arguments.json and not response.error:
            print("benchmark has no recorded witness examples; running CEGIS instead")
            print(f"verdict: {response.verdict}")
            return 0
        return _emit(response, arguments.json)

    if arguments.command == "batch":
        return _run_batch(arguments)

    if arguments.command == "serve":
        solver = Solver(timeout_seconds=arguments.timeout)
        return serve(arguments.host, arguments.port, solver)

    if arguments.command == "list":
        for benchmark in all_benchmarks(include_scaling=True):
            stats = benchmark.problem.grammar
            print(
                f"{benchmark.suite:13s} {benchmark.name:20s} "
                f"|N|={stats.num_nonterminals:3d} |delta|={stats.num_productions:3d}"
            )
        return 0

    if arguments.command == "engines":
        for name in tools:
            print(name)
        return 0

    if arguments.command == "domains":
        for name in domain_names():
            print(name)
        return 0

    if arguments.command == "bench":
        from repro import perf

        suites = (
            ["fixpoint", "logic", "domains"]
            if arguments.suite == "all"
            else [arguments.suite]
        )
        if arguments.out is not None and len(suites) > 1:
            print("--out requires a single --suite", file=sys.stderr)
            return 1
        for suite in suites:
            if suite == "fixpoint":
                report = perf.run_perf_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_report(report))
                default_path = perf.DEFAULT_BENCH_PATH
            elif suite == "domains":
                report = perf.run_domains_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_domains_report(report))
                default_path = perf.DEFAULT_DOMAINS_BENCH_PATH
            else:
                report = perf.run_logic_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_logic_report(report))
                default_path = perf.DEFAULT_LOGIC_BENCH_PATH
            if arguments.out != "-":
                target = perf.write_report(report, arguments.out or default_path)
                print(f"wrote {target}")
        return 0

    if arguments.command == "experiments":
        passthrough = [arguments.name, "--workers", str(arguments.workers)]
        if arguments.full:
            passthrough.append("--full")
        if arguments.out:
            passthrough.extend(["--out", arguments.out])
        return experiments.main(passthrough)

    return 1


def _run_batch(arguments: argparse.Namespace) -> int:
    directory = Path(arguments.directory)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 1
    paths = sorted(directory.rglob("*.sl"))
    if not paths:
        print(f"no .sl files under {directory}", file=sys.stderr)
        return 1
    solver = _solver_for(arguments)
    responses = solver.solve_batch(paths, workers=arguments.workers, kind="solve")
    if arguments.json:
        print(json.dumps([response.to_json() for response in responses], indent=2))
    else:
        rows = [
            {
                "file": str(path),
                "verdict": response.verdict,
                "engine": response.engine,
                "seconds": response.elapsed_seconds,
                "examples": response.num_examples,
            }
            for path, response in zip(paths, responses)
        ]
        print(experiments.render_rows(rows))
        for path, response in zip(paths, responses):
            if response.error:
                print(f"{path}: {response.error}", file=sys.stderr)
    return 1 if any(response.error for response in responses) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
