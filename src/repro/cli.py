"""Command line entry point: ``repro-nay`` (also ``python -m repro.cli``).

Subcommands:

* ``solve <file.sl>``       — run the NAY CEGIS loop on a SyGuS-IF problem;
* ``check <benchmark>``     — run one unrealizability check on a named
  benchmark's witness example set with a chosen engine (``--examples N``
  resizes the set deterministically);
* ``batch <dir>``           — solve every ``.sl`` file under a directory,
  optionally on a process pool (``--workers``) and/or with a multi-engine
  strategy (``--tool portfolio`` races, ``--tool staged`` escalates
  cheap-to-expensive); ``--verify-certificates`` re-checks every
  unrealizable response's proof with the independent checker;
* ``verify <response.json>`` — re-check a saved ``SolveResponse``: the
  schema-v3 certificate through :mod:`repro.analysis.certcheck`
  (``--certificate`` makes that mandatory), a realizable solution through
  the frozen reference evaluator;
* ``certify``               — sweep the benchmark registry, re-checking the
  certificate behind every unrealizable verdict (the CI gate);
* ``serve``                 — start the JSON HTTP endpoint
  (``POST /solve``, ``GET /engines``, ``GET /healthz``);
* ``list``                  — list the benchmark suites;
* ``engines``               — list the registered engines (+ the portfolio
  and staged strategies);
* ``domains``               — list the registered abstract domains;
* ``grammar <op> <ref>``    — the tree-automaton grammar algebra:
  ``compile`` (RTG -> DFTA statistics), ``intersect`` (product
  construction of two grammars), ``prune`` (observational-equivalence /
  language-preserving reduction with witnesses), ``count`` (distinct terms
  per size) and ``stats`` (grammar + automaton + minimized sizes);
* ``experiments <name>``    — shorthand for ``python -m repro.experiments``;
* ``bench``                 — run a perf harness (``--suite fixpoint``,
  ``logic``, ``domains``, ``grammar``, ``chaos``, ``serve`` or ``all``)
  and write its versioned ``BENCH_*.json`` artifact.

``solve``/``check``/``batch``/``serve`` accept ``--store PATH`` (or the
``REPRO_NAY_STORE`` environment variable) to name a persistent result
store: a SQLite file in which definitive responses — certificates included
— are recorded by fingerprint and replayed across runs and processes
(:mod:`repro.engine.store`).

``solve``/``check``/``batch`` accept ``--prune off|reduce|oe`` to shrink
the grammar (via the tree-automaton core) before any engine builds its
equation systems; the knob rides on the request's tag mapping, so the wire
schema is unchanged.

``solve``, ``check`` and ``batch`` accept ``--json`` to emit the versioned
wire format (:mod:`repro.api.wire`) instead of text.  All solving resolves
through :class:`repro.api.Solver`, so the CLI carries no engine/example/
timeout plumbing of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import experiments
from repro.api import PORTFOLIO_ENGINE, STAGED_ENGINE, SolveResponse, Solver
from repro.api.service import DEFAULT_HOST, DEFAULT_PORT, serve
from repro.domains.registry import domain_names
from repro.engine.registry import engine_names
from repro.semantics.examples import ExampleSet
from repro.suites import all_benchmarks


def _nonnegative(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("example count must be >= 0")
    return parsed


def _add_solving_arguments(parser: argparse.ArgumentParser, tools: List[str]) -> None:
    parser.add_argument("--tool", default="naySL", choices=tools)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--max-iterations", type=int, default=None, help="CEGIS iteration budget"
    )
    parser.add_argument(
        "--max-examples", type=int, default=None, help="cap the example set size"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the versioned JSON wire format"
    )
    parser.add_argument(
        "--prune",
        default="off",
        choices=["off", "reduce", "oe"],
        help="tree-automaton grammar reduction before equation building "
        "(reduce: language-preserving; oe: merge observationally "
        "equivalent productions on the example set)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent result store (SQLite file; definitive verdicts are "
        "replayed across runs and processes; also settable via "
        "REPRO_NAY_STORE)",
    )


def _solver_for(arguments: argparse.Namespace) -> Solver:
    return Solver(
        engine=arguments.tool,
        timeout_seconds=arguments.timeout,
        seed=arguments.seed,
        max_iterations=arguments.max_iterations,
        max_examples=arguments.max_examples,
    )


def _solving_tags(arguments: argparse.Namespace) -> dict:
    """Request tags implied by the solving flags (just ``--prune`` today)."""
    if getattr(arguments, "prune", "off") != "off":
        return {"prune": arguments.prune}
    return {}


def _emit(response: SolveResponse, as_json: bool) -> int:
    """Print one response (text or wire form); non-zero on error responses."""
    if as_json:
        print(response.to_json_text(indent=2))
        return 1 if response.error else 0
    if response.error:
        print(response.error, file=sys.stderr)
        return 1
    if response.kind == "check":
        examples = ExampleSet.from_dicts(response.witness_examples)
        print(f"verdict: {response.verdict} on {examples}")
    else:
        print(f"verdict: {response.verdict}")
        if response.solution is not None:
            print(f"solution: {response.solution}")
        print(f"examples used: {response.num_examples}")
    if response.engines_raced:
        print(f"winner: {response.engine} (raced {', '.join(response.engines_raced)})")
    print(f"time: {response.elapsed_seconds:.2f}s")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    engines = engine_names()
    tools = engines + [PORTFOLIO_ENGINE, STAGED_ENGINE]
    parser = argparse.ArgumentParser(prog="repro-nay", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run the CEGIS loop on a .sl file")
    solve.add_argument("path")
    _add_solving_arguments(solve, tools)

    check = subparsers.add_parser("check", help="check a named benchmark")
    check.add_argument("benchmark")
    _add_solving_arguments(check, tools)
    check.add_argument(
        "--examples",
        type=_nonnegative,
        default=None,
        help="resize the witness example set (truncate or top up, seeded)",
    )

    batch = subparsers.add_parser("batch", help="solve every .sl file under a directory")
    batch.add_argument("directory")
    _add_solving_arguments(batch, tools)
    batch.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = in-process)"
    )
    batch.add_argument(
        "--verify-certificates",
        action="store_true",
        help="re-check every unrealizable response's certificate with the "
        "independent checker; exit non-zero if any is missing or rejected",
    )

    verify = subparsers.add_parser(
        "verify", help="re-check a saved SolveResponse JSON payload"
    )
    verify.add_argument(
        "response", help="path to a SolveResponse JSON file, or '-' for stdin"
    )
    verify.add_argument(
        "--problem",
        default=None,
        help="the .sl file (or benchmark name) the response is about; "
        "needed when the response does not name a benchmark",
    )
    verify.add_argument(
        "--certificate",
        action="store_true",
        help="require the schema-v3 certificate payload; without this flag "
        "certificate-less unrealizable responses fall back to an engine re-run",
    )

    certify = subparsers.add_parser(
        "certify",
        help="sweep the benchmark registry and re-check every certificate",
    )
    certify.add_argument(
        "--tool",
        default="all",
        choices=engines + ["all"],
        help="one engine, or 'all' to sweep every registered engine",
    )
    certify.add_argument(
        "--quick", action="store_true", help="small benchmark slice for CI gating"
    )
    certify.add_argument("--timeout", type=float, default=600.0)
    certify.add_argument(
        "--json", action="store_true", help="emit one JSON summary object"
    )

    server = subparsers.add_parser("serve", help="start the JSON HTTP endpoint")
    server.add_argument("--host", default=DEFAULT_HOST)
    server.add_argument("--port", type=int, default=DEFAULT_PORT)
    server.add_argument(
        "--timeout", type=float, default=600.0, help="default per-request timeout"
    )
    server.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pre-warmed solve-fabric worker processes "
        "(default: auto-sized; 0 disables the fabric)",
    )
    server.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission control: concurrent requests before 503 + Retry-After",
    )
    server.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        help="largest accepted POST /solve body (HTTP 413 beyond it)",
    )
    server.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persistent result store (SQLite file shared by the HTTP tier "
        "and the fabric workers; also settable via REPRO_NAY_STORE)",
    )

    subparsers.add_parser("list", help="list all benchmarks")
    subparsers.add_parser("engines", help="list the registered engines")
    subparsers.add_parser("domains", help="list the registered abstract domains")

    grammar = subparsers.add_parser(
        "grammar", help="the tree-automaton grammar algebra"
    )
    grammar_ops = grammar.add_subparsers(dest="grammar_op", required=True)

    g_compile = grammar_ops.add_parser(
        "compile", help="compile an RTG to a bottom-up tree automaton"
    )
    g_compile.add_argument("ref", help="benchmark name or .sl file")
    g_compile.add_argument(
        "--show", action="store_true", help="print the automaton's rules"
    )
    g_compile.add_argument("--json", action="store_true")

    g_intersect = grammar_ops.add_parser(
        "intersect", help="product construction of two grammars"
    )
    g_intersect.add_argument("left", help="benchmark name or .sl file")
    g_intersect.add_argument("right", help="benchmark name or .sl file")
    g_intersect.add_argument(
        "--max-size", type=int, default=6, help="size bound for the term count"
    )
    g_intersect.add_argument("--json", action="store_true")

    g_prune = grammar_ops.add_parser(
        "prune", help="observational-equivalence / language-preserving reduction"
    )
    g_prune.add_argument("ref", help="benchmark name or .sl file")
    g_prune.add_argument(
        "--mode", default="oe", choices=["reduce", "oe"], help="merge aggressiveness"
    )
    g_prune.add_argument(
        "--examples",
        type=_nonnegative,
        default=None,
        help="resize the witness example set the oe merge evaluates on",
    )
    g_prune.add_argument("--json", action="store_true")

    g_count = grammar_ops.add_parser(
        "count", help="count distinct terms of each size"
    )
    g_count.add_argument("ref", help="benchmark name or .sl file")
    g_count.add_argument("--max-size", type=int, default=8)
    g_count.add_argument("--json", action="store_true")

    g_stats = grammar_ops.add_parser(
        "stats", help="grammar, automaton and minimized-automaton sizes"
    )
    g_stats.add_argument("ref", help="benchmark name or .sl file")
    g_stats.add_argument("--json", action="store_true")

    experiment = subparsers.add_parser("experiments", help="regenerate tables/figures")
    experiment.add_argument("name", choices=sorted(experiments.EXPERIMENTS) + ["all"])
    experiment.add_argument("--full", action="store_true")
    experiment.add_argument("--workers", type=int, default=1)
    experiment.add_argument("--out", default=None)

    bench = subparsers.add_parser(
        "bench",
        help="run a perf harness and write its BENCH_*.json artifact",
    )
    bench.add_argument(
        "--suite",
        choices=["fixpoint", "logic", "domains", "grammar", "chaos", "serve", "all"],
        default="fixpoint",
        help="fixpoint: worklist-vs-dense strategies (BENCH_fixpoint.json); "
        "logic: incremental DPLL(T) core vs the pre-rewrite solver "
        "(BENCH_logic.json); domains: the columnar evaluation core over an "
        "example-count sweep (BENCH_domains.json); grammar: tree-automaton "
        "pruning + memoized-enumerator deltas (BENCH_grammar.json); chaos: "
        "fault-injected resilience sweep over the solve fabric "
        "(BENCH_chaos.json); serve: concurrent-client load over the real "
        "HTTP server with the persistent result store — cold vs warm "
        "latency/throughput (BENCH_serve.json); all: every timing suite "
        "(chaos and serve excluded; run them explicitly)",
    )
    bench.add_argument(
        "--repeat", type=int, default=3, help="timed repetitions per measurement"
    )
    bench.add_argument(
        "--quick", action="store_true", help="small sweep for CI smoke runs"
    )
    bench.add_argument(
        "--out",
        default=None,
        help="artifact path (defaults to the suite's BENCH_*.json; '-' to "
        "skip writing; only valid for a single suite)",
    )

    arguments = parser.parse_args(argv)

    # --store exports the persistent result store path to the environment
    # (rather than plumbing it through every call): the ambient accessor
    # picks it up lazily here, and fabric/batch worker processes inherit it.
    if getattr(arguments, "store", None):
        import os

        from repro.engine.store import STORE_ENV

        os.environ[STORE_ENV] = arguments.store

    if arguments.command == "solve":
        solver = _solver_for(arguments)
        response = solver.solve(
            Path(arguments.path), kind="solve", tags=_solving_tags(arguments)
        )
        return _emit(response, arguments.json)

    if arguments.command == "check":
        solver = _solver_for(arguments)
        # Resolution failures (unknown benchmark, exhausted example top-up)
        # come back as verdict="error" responses; _emit routes them to
        # stderr with exit code 1.
        response = solver.solve(
            arguments.benchmark,
            example_count=arguments.examples,
            tags=_solving_tags(arguments),
        )
        if response.kind == "solve" and not arguments.json and not response.error:
            print("benchmark has no recorded witness examples; running CEGIS instead")
            print(f"verdict: {response.verdict}")
            return 0
        return _emit(response, arguments.json)

    if arguments.command == "batch":
        return _run_batch(arguments)

    if arguments.command == "verify":
        return _run_verify(arguments)

    if arguments.command == "certify":
        return _run_certify(arguments, engines)

    if arguments.command == "serve":
        from repro.api.service import DEFAULT_MAX_INFLIGHT, DEFAULT_MAX_REQUEST_BYTES

        solver = Solver(timeout_seconds=arguments.timeout)
        return serve(
            arguments.host,
            arguments.port,
            solver,
            workers=arguments.workers,
            max_inflight=(
                arguments.max_inflight
                if arguments.max_inflight is not None
                else DEFAULT_MAX_INFLIGHT
            ),
            max_request_bytes=(
                arguments.max_request_bytes
                if arguments.max_request_bytes is not None
                else DEFAULT_MAX_REQUEST_BYTES
            ),
            store=arguments.store,
        )

    if arguments.command == "list":
        for benchmark in all_benchmarks(include_scaling=True):
            stats = benchmark.problem.grammar
            print(
                f"{benchmark.suite:13s} {benchmark.name:20s} "
                f"|N|={stats.num_nonterminals:3d} |delta|={stats.num_productions:3d}"
            )
        return 0

    if arguments.command == "engines":
        for name in tools:
            print(name)
        return 0

    if arguments.command == "domains":
        for name in domain_names():
            print(name)
        return 0

    if arguments.command == "grammar":
        return _run_grammar(arguments)

    if arguments.command == "bench":
        from repro import perf

        suites = (
            ["fixpoint", "logic", "domains", "grammar"]
            if arguments.suite == "all"
            else [arguments.suite]
        )
        if arguments.out is not None and len(suites) > 1:
            print("--out requires a single --suite", file=sys.stderr)
            return 1
        for suite in suites:
            if suite == "fixpoint":
                report = perf.run_perf_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_report(report))
                default_path = perf.DEFAULT_BENCH_PATH
            elif suite == "domains":
                report = perf.run_domains_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_domains_report(report))
                default_path = perf.DEFAULT_DOMAINS_BENCH_PATH
            elif suite == "grammar":
                report = perf.run_grammar_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_grammar_report(report))
                default_path = perf.DEFAULT_GRAMMAR_BENCH_PATH
            elif suite == "chaos":
                report = perf.run_chaos_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_chaos_report(report))
                default_path = perf.DEFAULT_CHAOS_BENCH_PATH
            elif suite == "serve":
                report = perf.run_serve_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_serve_report(report))
                default_path = perf.DEFAULT_SERVE_BENCH_PATH
            else:
                report = perf.run_logic_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_logic_report(report))
                default_path = perf.DEFAULT_LOGIC_BENCH_PATH
            if arguments.out != "-":
                target = perf.write_report(report, arguments.out or default_path)
                print(f"wrote {target}")
        return 0

    if arguments.command == "experiments":
        passthrough = [arguments.name, "--workers", str(arguments.workers)]
        if arguments.full:
            passthrough.append("--full")
        if arguments.out:
            passthrough.extend(["--out", arguments.out])
        return experiments.main(passthrough)

    return 1


def _run_batch(arguments: argparse.Namespace) -> int:
    directory = Path(arguments.directory)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 1
    paths = sorted(directory.rglob("*.sl"))
    if not paths:
        print(f"no .sl files under {directory}", file=sys.stderr)
        return 1
    solver = _solver_for(arguments)
    responses = solver.solve_batch(
        paths, workers=arguments.workers, kind="solve", tags=_solving_tags(arguments)
    )
    if arguments.json:
        print(json.dumps([response.to_json() for response in responses], indent=2))
    else:
        rows = [
            {
                "file": str(path),
                "verdict": response.verdict,
                "engine": response.engine,
                "seconds": response.elapsed_seconds,
                "examples": response.num_examples,
            }
            for path, response in zip(paths, responses)
        ]
        print(experiments.render_rows(rows))
        for path, response in zip(paths, responses):
            if response.error:
                print(f"{path}: {response.error}", file=sys.stderr)
    failed = any(response.error for response in responses)
    if arguments.verify_certificates:
        solver = Solver()
        for path, response in zip(paths, responses):
            if response.verdict != "unrealizable":
                continue
            if not solver.verify(response, path, require_certificate=True):
                state = "missing" if response.certificate is None else "rejected"
                print(f"{path}: certificate {state}", file=sys.stderr)
                failed = True
    return 1 if failed else 0


def _resolve_grammar_ref(ref: str):
    """The (problem, witness examples) a grammar-algebra operand names."""
    from repro.api.facade import resolve_problem, resolve_request_examples

    request = Solver().request(ref)
    problem, benchmark = resolve_problem(request)
    examples = resolve_request_examples(request, problem, benchmark)
    return problem, examples


def _run_grammar(arguments: argparse.Namespace) -> int:
    """The ``repro-nay grammar`` family over the tree-automaton core."""
    from repro.grammar import TreeAutomaton, prune_grammar
    from repro.utils.errors import ReproError

    def emit(payload: dict, lines: List[str]) -> int:
        if arguments.json:
            print(json.dumps(payload, indent=2))
        else:
            for line in lines:
                print(line)
        return 0

    try:
        if arguments.grammar_op == "compile":
            problem, _ = _resolve_grammar_ref(arguments.ref)
            automaton = TreeAutomaton.from_grammar(problem.grammar)
            stats = automaton.statistics()
            lines = [
                f"{problem.grammar.name}: {stats['states']} states, "
                f"{stats['rules']} rules, {stats['symbols']} symbols, "
                f"deterministic={stats['deterministic']}"
            ]
            if getattr(arguments, "show", False):
                lines.append(str(automaton))
            return emit({"grammar": problem.grammar.name, **stats}, lines)

        if arguments.grammar_op == "intersect":
            left, _ = _resolve_grammar_ref(arguments.left)
            right, _ = _resolve_grammar_ref(arguments.right)
            a = TreeAutomaton.from_grammar(left.grammar)
            b = TreeAutomaton.from_grammar(right.grammar)
            product = a.intersect(b)
            counts = product.count_terms(max_size=arguments.max_size)
            total = sum(counts.values())
            payload = {
                "left": {"grammar": left.grammar.name, **a.statistics()},
                "right": {"grammar": right.grammar.name, **b.statistics()},
                "product": product.statistics(),
                "terms_up_to_size": {str(k): v for k, v in sorted(counts.items())},
                "total_terms": total,
            }
            lines = [
                f"left  {left.grammar.name}: {a.num_states} states, {a.num_rules} rules",
                f"right {right.grammar.name}: {b.num_states} states, {b.num_rules} rules",
                f"product: {product.num_states} states, {product.num_rules} rules",
                f"shared terms up to size {arguments.max_size}: {total}",
            ]
            return emit(payload, lines)

        if arguments.grammar_op == "prune":
            problem, examples = _resolve_grammar_ref(arguments.ref)
            if arguments.examples is not None:
                examples = examples.resized(problem.variables, arguments.examples, seed=0)
            pruned, report = prune_grammar(
                problem.grammar, examples, mode=arguments.mode
            )
            payload = {
                "grammar": problem.grammar.name,
                "mode": report.mode,
                "states": {"before": report.states_before, "after": report.states_after},
                "productions": {
                    "before": report.productions_before,
                    "after": report.productions_after,
                    "pruned": report.productions_pruned,
                },
                "merged": {
                    dropped.name: kept.name for dropped, kept in report.merged.items()
                },
                "witnesses": dict(report.witnesses),
            }
            lines = [
                f"{problem.grammar.name} [{report.mode}] "
                f"states {report.states_before} -> {report.states_after}, "
                f"productions {report.productions_before} -> {report.productions_after} "
                f"({report.productions_pruned} pruned)",
            ]
            for dropped, kept in sorted(
                report.merged.items(), key=lambda item: item[0].name
            ):
                witness = report.witnesses.get(kept.name, "?")
                lines.append(f"  {dropped.name} -> {kept.name}  (witness: {witness})")
            return emit(payload, lines)

        if arguments.grammar_op == "count":
            problem, _ = _resolve_grammar_ref(arguments.ref)
            automaton = TreeAutomaton.from_grammar(problem.grammar)
            counts = automaton.count_terms(max_size=arguments.max_size)
            total = sum(counts.values())
            payload = {
                "grammar": problem.grammar.name,
                "counts": {str(k): v for k, v in sorted(counts.items())},
                "total": total,
            }
            lines = [
                f"size {size}: {count}" for size, count in sorted(counts.items())
            ] + [f"total distinct terms up to size {arguments.max_size}: {total}"]
            return emit(payload, lines)

        if arguments.grammar_op == "stats":
            problem, examples = _resolve_grammar_ref(arguments.ref)
            automaton = TreeAutomaton.from_grammar(problem.grammar)
            minimized = automaton.minimize()
            _, oe_report = prune_grammar(problem.grammar, examples, mode="oe")
            payload = {
                "grammar": {
                    "name": problem.grammar.name,
                    "nonterminals": problem.grammar.num_nonterminals,
                    "productions": problem.grammar.num_productions,
                },
                "automaton": automaton.statistics(),
                "minimized": minimized.statistics(),
                "oe_prune": oe_report.counters(),
            }
            lines = [
                f"grammar   {problem.grammar.name}: "
                f"|N|={problem.grammar.num_nonterminals} "
                f"|delta|={problem.grammar.num_productions}",
                f"automaton: {automaton.num_states} states, {automaton.num_rules} rules",
                f"minimized: {minimized.num_states} states, {minimized.num_rules} rules",
                f"oe prune : {oe_report.counters()}",
            ]
            return emit(payload, lines)
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 1
    return 1


def _run_verify(arguments: argparse.Namespace) -> int:
    if arguments.response == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(arguments.response).read_text()
        except OSError as error:
            print(f"cannot read {arguments.response}: {error}", file=sys.stderr)
            return 1
    try:
        response = SolveResponse.from_json_text(text)
    except Exception as error:  # noqa: BLE001 — malformed payloads exit cleanly
        print(f"invalid response payload: {error}", file=sys.stderr)
        return 1
    problem = None
    if arguments.problem is not None:
        raw = arguments.problem
        problem = Path(raw) if raw.endswith(".sl") else raw
    verified = Solver().verify(
        response, problem, require_certificate=arguments.certificate
    )
    source = "certificate" if response.certificate is not None else "witness re-run"
    if verified:
        print(f"verified: {response.verdict} ({source})")
        return 0
    print(f"NOT verified: {response.verdict}", file=sys.stderr)
    return 1


def _run_certify(arguments: argparse.Namespace, engines: List[str]) -> int:
    """Sweep the registry: every unrealizable verdict must carry a
    certificate the independent checker accepts."""
    from repro.analysis import check_certificate

    names = engines if arguments.tool == "all" else [arguments.tool]
    benchmarks = [
        benchmark
        for benchmark in all_benchmarks(include_scaling=True)
        if benchmark.witness_examples is not None
        and len(benchmark.witness_examples) > 0
    ]
    if arguments.quick:
        benchmarks = benchmarks[:10]
    solver = Solver(timeout_seconds=arguments.timeout)
    certified = {name: 0 for name in names}
    unrealizable = {name: 0 for name in names}
    failures: List[dict] = []
    for benchmark in benchmarks:
        for name in names:
            response = solver.check(benchmark, engine=name)
            if response.verdict != "unrealizable":
                continue
            unrealizable[name] += 1
            if response.certificate is None:
                failures.append(
                    {"benchmark": benchmark.name, "engine": name, "why": "missing"}
                )
                continue
            result = check_certificate(benchmark.problem, response.certificate)
            if result:
                certified[name] += 1
            else:
                failures.append(
                    {
                        "benchmark": benchmark.name,
                        "engine": name,
                        "why": f"rejected: {result.reason}",
                    }
                )
    if arguments.json:
        print(
            json.dumps(
                {
                    "benchmarks": len(benchmarks),
                    "engines": names,
                    "unrealizable": unrealizable,
                    "certified": certified,
                    "failures": failures,
                },
                indent=2,
            )
        )
    else:
        for name in names:
            print(
                f"{name:10s} {certified[name]}/{unrealizable[name]} "
                "unrealizable verdicts certified"
            )
        for failure in failures:
            print(
                f"{failure['benchmark']} [{failure['engine']}]: {failure['why']}",
                file=sys.stderr,
            )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
