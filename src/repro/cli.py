"""Command line entry point: ``repro-nay`` (also ``python -m repro.cli``).

Subcommands:

* ``solve <file.sl>``       — run the NAY CEGIS loop on a SyGuS-IF problem;
* ``check <benchmark>``     — run one unrealizability check on a named
  benchmark's witness example set with a chosen tool;
* ``list``                  — list the benchmark suites;
* ``experiments <name>``    — shorthand for ``python -m repro.experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import experiments
from repro.baselines import NayHorn, NaySL, Nope
from repro.suites import all_benchmarks, get_benchmark
from repro.sygus import parse_sygus_file


def _tool(name: str, seed: Optional[int], timeout: Optional[float]):
    if name == "naySL":
        return NaySL(seed=seed, timeout_seconds=timeout)
    if name == "nayHorn":
        return NayHorn(seed=seed, timeout_seconds=timeout)
    if name == "nope":
        return Nope(seed=seed, timeout_seconds=timeout)
    raise SystemExit(f"unknown tool {name!r}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-nay", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run the CEGIS loop on a .sl file")
    solve.add_argument("path")
    solve.add_argument("--tool", default="naySL", choices=["naySL", "nayHorn", "nope"])
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--timeout", type=float, default=600.0)

    check = subparsers.add_parser("check", help="check a named benchmark")
    check.add_argument("benchmark")
    check.add_argument("--tool", default="naySL", choices=["naySL", "nayHorn", "nope"])
    check.add_argument("--timeout", type=float, default=600.0)

    subparsers.add_parser("list", help="list all benchmarks")

    experiment = subparsers.add_parser("experiments", help="regenerate tables/figures")
    experiment.add_argument("name", choices=sorted(experiments.EXPERIMENTS) + ["all"])
    experiment.add_argument("--full", action="store_true")

    arguments = parser.parse_args(argv)

    if arguments.command == "solve":
        problem = parse_sygus_file(arguments.path)
        tool = _tool(arguments.tool, arguments.seed, arguments.timeout)
        result = tool.solve(problem)
        print(f"verdict: {result.verdict.value}")
        if result.solution is not None:
            print(f"solution: {result.solution.to_sexpr()}")
        print(f"examples used: {result.num_examples}")
        print(f"time: {result.elapsed_seconds:.2f}s")
        return 0

    if arguments.command == "check":
        benchmark = get_benchmark(arguments.benchmark)
        tool = _tool(arguments.tool, 0, arguments.timeout)
        examples = benchmark.witness_examples
        if examples is None:
            print("benchmark has no recorded witness examples; running CEGIS instead")
            result = tool.solve(benchmark.problem)
            print(f"verdict: {result.verdict.value}")
            return 0
        result = tool.check(benchmark.problem, examples)
        print(f"verdict: {result.verdict.value} on {examples}")
        print(f"time: {result.elapsed_seconds:.2f}s")
        return 0

    if arguments.command == "list":
        for benchmark in all_benchmarks(include_scaling=True):
            stats = benchmark.problem.grammar
            print(
                f"{benchmark.suite:13s} {benchmark.name:20s} "
                f"|N|={stats.num_nonterminals:3d} |delta|={stats.num_productions:3d}"
            )
        return 0

    if arguments.command == "experiments":
        return experiments.main(
            [arguments.name] + (["--full"] if arguments.full else [])
        )

    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
