"""Command line entry point: ``repro-nay`` (also ``python -m repro.cli``).

Subcommands:

* ``solve <file.sl>``       — run the NAY CEGIS loop on a SyGuS-IF problem;
* ``check <benchmark>``     — run one unrealizability check on a named
  benchmark's witness example set with a chosen engine (``--examples N``
  resizes the set deterministically);
* ``batch <dir>``           — solve every ``.sl`` file under a directory,
  optionally on a process pool (``--workers``) and/or with a multi-engine
  strategy (``--tool portfolio`` races, ``--tool staged`` escalates
  cheap-to-expensive); ``--verify-certificates`` re-checks every
  unrealizable response's proof with the independent checker;
* ``verify <response.json>`` — re-check a saved ``SolveResponse``: the
  schema-v3 certificate through :mod:`repro.analysis.certcheck`
  (``--certificate`` makes that mandatory), a realizable solution through
  the frozen reference evaluator;
* ``certify``               — sweep the benchmark registry, re-checking the
  certificate behind every unrealizable verdict (the CI gate);
* ``serve``                 — start the JSON HTTP endpoint
  (``POST /solve``, ``GET /engines``, ``GET /healthz``);
* ``list``                  — list the benchmark suites;
* ``engines``               — list the registered engines (+ the portfolio
  and staged strategies);
* ``domains``               — list the registered abstract domains;
* ``experiments <name>``    — shorthand for ``python -m repro.experiments``;
* ``bench``                 — run a perf harness (``--suite fixpoint``,
  ``logic``, ``domains`` or ``all``) and write its versioned
  ``BENCH_*.json`` artifact.

``solve``, ``check`` and ``batch`` accept ``--json`` to emit the versioned
wire format (:mod:`repro.api.wire`) instead of text.  All solving resolves
through :class:`repro.api.Solver`, so the CLI carries no engine/example/
timeout plumbing of its own.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import experiments
from repro.api import PORTFOLIO_ENGINE, STAGED_ENGINE, SolveResponse, Solver
from repro.api.service import DEFAULT_HOST, DEFAULT_PORT, serve
from repro.domains.registry import domain_names
from repro.engine.registry import engine_names
from repro.semantics.examples import ExampleSet
from repro.suites import all_benchmarks


def _nonnegative(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError("example count must be >= 0")
    return parsed


def _add_solving_arguments(parser: argparse.ArgumentParser, tools: List[str]) -> None:
    parser.add_argument("--tool", default="naySL", choices=tools)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--max-iterations", type=int, default=None, help="CEGIS iteration budget"
    )
    parser.add_argument(
        "--max-examples", type=int, default=None, help="cap the example set size"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the versioned JSON wire format"
    )


def _solver_for(arguments: argparse.Namespace) -> Solver:
    return Solver(
        engine=arguments.tool,
        timeout_seconds=arguments.timeout,
        seed=arguments.seed,
        max_iterations=arguments.max_iterations,
        max_examples=arguments.max_examples,
    )


def _emit(response: SolveResponse, as_json: bool) -> int:
    """Print one response (text or wire form); non-zero on error responses."""
    if as_json:
        print(response.to_json_text(indent=2))
        return 1 if response.error else 0
    if response.error:
        print(response.error, file=sys.stderr)
        return 1
    if response.kind == "check":
        examples = ExampleSet.from_dicts(response.witness_examples)
        print(f"verdict: {response.verdict} on {examples}")
    else:
        print(f"verdict: {response.verdict}")
        if response.solution is not None:
            print(f"solution: {response.solution}")
        print(f"examples used: {response.num_examples}")
    if response.engines_raced:
        print(f"winner: {response.engine} (raced {', '.join(response.engines_raced)})")
    print(f"time: {response.elapsed_seconds:.2f}s")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    engines = engine_names()
    tools = engines + [PORTFOLIO_ENGINE, STAGED_ENGINE]
    parser = argparse.ArgumentParser(prog="repro-nay", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run the CEGIS loop on a .sl file")
    solve.add_argument("path")
    _add_solving_arguments(solve, tools)

    check = subparsers.add_parser("check", help="check a named benchmark")
    check.add_argument("benchmark")
    _add_solving_arguments(check, tools)
    check.add_argument(
        "--examples",
        type=_nonnegative,
        default=None,
        help="resize the witness example set (truncate or top up, seeded)",
    )

    batch = subparsers.add_parser("batch", help="solve every .sl file under a directory")
    batch.add_argument("directory")
    _add_solving_arguments(batch, tools)
    batch.add_argument(
        "--workers", type=int, default=1, help="process-pool size (1 = in-process)"
    )
    batch.add_argument(
        "--verify-certificates",
        action="store_true",
        help="re-check every unrealizable response's certificate with the "
        "independent checker; exit non-zero if any is missing or rejected",
    )

    verify = subparsers.add_parser(
        "verify", help="re-check a saved SolveResponse JSON payload"
    )
    verify.add_argument(
        "response", help="path to a SolveResponse JSON file, or '-' for stdin"
    )
    verify.add_argument(
        "--problem",
        default=None,
        help="the .sl file (or benchmark name) the response is about; "
        "needed when the response does not name a benchmark",
    )
    verify.add_argument(
        "--certificate",
        action="store_true",
        help="require the schema-v3 certificate payload; without this flag "
        "certificate-less unrealizable responses fall back to an engine re-run",
    )

    certify = subparsers.add_parser(
        "certify",
        help="sweep the benchmark registry and re-check every certificate",
    )
    certify.add_argument(
        "--tool",
        default="all",
        choices=engines + ["all"],
        help="one engine, or 'all' to sweep every registered engine",
    )
    certify.add_argument(
        "--quick", action="store_true", help="small benchmark slice for CI gating"
    )
    certify.add_argument("--timeout", type=float, default=600.0)
    certify.add_argument(
        "--json", action="store_true", help="emit one JSON summary object"
    )

    server = subparsers.add_parser("serve", help="start the JSON HTTP endpoint")
    server.add_argument("--host", default=DEFAULT_HOST)
    server.add_argument("--port", type=int, default=DEFAULT_PORT)
    server.add_argument(
        "--timeout", type=float, default=600.0, help="default per-request timeout"
    )
    server.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pre-warmed solve-fabric worker processes "
        "(default: auto-sized; 0 disables the fabric)",
    )
    server.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="admission control: concurrent requests before 503 + Retry-After",
    )
    server.add_argument(
        "--max-request-bytes",
        type=int,
        default=None,
        help="largest accepted POST /solve body (HTTP 413 beyond it)",
    )

    subparsers.add_parser("list", help="list all benchmarks")
    subparsers.add_parser("engines", help="list the registered engines")
    subparsers.add_parser("domains", help="list the registered abstract domains")

    experiment = subparsers.add_parser("experiments", help="regenerate tables/figures")
    experiment.add_argument("name", choices=sorted(experiments.EXPERIMENTS) + ["all"])
    experiment.add_argument("--full", action="store_true")
    experiment.add_argument("--workers", type=int, default=1)
    experiment.add_argument("--out", default=None)

    bench = subparsers.add_parser(
        "bench",
        help="run a perf harness and write its BENCH_*.json artifact",
    )
    bench.add_argument(
        "--suite",
        choices=["fixpoint", "logic", "domains", "chaos", "all"],
        default="fixpoint",
        help="fixpoint: worklist-vs-dense strategies (BENCH_fixpoint.json); "
        "logic: incremental DPLL(T) core vs the pre-rewrite solver "
        "(BENCH_logic.json); domains: the columnar evaluation core over an "
        "example-count sweep (BENCH_domains.json); chaos: fault-injected "
        "resilience sweep over the solve fabric (BENCH_chaos.json); "
        "all: every timing suite (chaos excluded; run it explicitly)",
    )
    bench.add_argument(
        "--repeat", type=int, default=3, help="timed repetitions per measurement"
    )
    bench.add_argument(
        "--quick", action="store_true", help="small sweep for CI smoke runs"
    )
    bench.add_argument(
        "--out",
        default=None,
        help="artifact path (defaults to the suite's BENCH_*.json; '-' to "
        "skip writing; only valid for a single suite)",
    )

    arguments = parser.parse_args(argv)

    if arguments.command == "solve":
        solver = _solver_for(arguments)
        response = solver.solve(Path(arguments.path), kind="solve")
        return _emit(response, arguments.json)

    if arguments.command == "check":
        solver = _solver_for(arguments)
        # Resolution failures (unknown benchmark, exhausted example top-up)
        # come back as verdict="error" responses; _emit routes them to
        # stderr with exit code 1.
        response = solver.solve(arguments.benchmark, example_count=arguments.examples)
        if response.kind == "solve" and not arguments.json and not response.error:
            print("benchmark has no recorded witness examples; running CEGIS instead")
            print(f"verdict: {response.verdict}")
            return 0
        return _emit(response, arguments.json)

    if arguments.command == "batch":
        return _run_batch(arguments)

    if arguments.command == "verify":
        return _run_verify(arguments)

    if arguments.command == "certify":
        return _run_certify(arguments, engines)

    if arguments.command == "serve":
        from repro.api.service import DEFAULT_MAX_INFLIGHT, DEFAULT_MAX_REQUEST_BYTES

        solver = Solver(timeout_seconds=arguments.timeout)
        return serve(
            arguments.host,
            arguments.port,
            solver,
            workers=arguments.workers,
            max_inflight=(
                arguments.max_inflight
                if arguments.max_inflight is not None
                else DEFAULT_MAX_INFLIGHT
            ),
            max_request_bytes=(
                arguments.max_request_bytes
                if arguments.max_request_bytes is not None
                else DEFAULT_MAX_REQUEST_BYTES
            ),
        )

    if arguments.command == "list":
        for benchmark in all_benchmarks(include_scaling=True):
            stats = benchmark.problem.grammar
            print(
                f"{benchmark.suite:13s} {benchmark.name:20s} "
                f"|N|={stats.num_nonterminals:3d} |delta|={stats.num_productions:3d}"
            )
        return 0

    if arguments.command == "engines":
        for name in tools:
            print(name)
        return 0

    if arguments.command == "domains":
        for name in domain_names():
            print(name)
        return 0

    if arguments.command == "bench":
        from repro import perf

        suites = (
            ["fixpoint", "logic", "domains"]
            if arguments.suite == "all"
            else [arguments.suite]
        )
        if arguments.out is not None and len(suites) > 1:
            print("--out requires a single --suite", file=sys.stderr)
            return 1
        for suite in suites:
            if suite == "fixpoint":
                report = perf.run_perf_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_report(report))
                default_path = perf.DEFAULT_BENCH_PATH
            elif suite == "domains":
                report = perf.run_domains_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_domains_report(report))
                default_path = perf.DEFAULT_DOMAINS_BENCH_PATH
            elif suite == "chaos":
                report = perf.run_chaos_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_chaos_report(report))
                default_path = perf.DEFAULT_CHAOS_BENCH_PATH
            else:
                report = perf.run_logic_suite(
                    repetitions=arguments.repeat, quick=arguments.quick
                )
                print(perf.render_logic_report(report))
                default_path = perf.DEFAULT_LOGIC_BENCH_PATH
            if arguments.out != "-":
                target = perf.write_report(report, arguments.out or default_path)
                print(f"wrote {target}")
        return 0

    if arguments.command == "experiments":
        passthrough = [arguments.name, "--workers", str(arguments.workers)]
        if arguments.full:
            passthrough.append("--full")
        if arguments.out:
            passthrough.extend(["--out", arguments.out])
        return experiments.main(passthrough)

    return 1


def _run_batch(arguments: argparse.Namespace) -> int:
    directory = Path(arguments.directory)
    if not directory.is_dir():
        print(f"not a directory: {directory}", file=sys.stderr)
        return 1
    paths = sorted(directory.rglob("*.sl"))
    if not paths:
        print(f"no .sl files under {directory}", file=sys.stderr)
        return 1
    solver = _solver_for(arguments)
    responses = solver.solve_batch(paths, workers=arguments.workers, kind="solve")
    if arguments.json:
        print(json.dumps([response.to_json() for response in responses], indent=2))
    else:
        rows = [
            {
                "file": str(path),
                "verdict": response.verdict,
                "engine": response.engine,
                "seconds": response.elapsed_seconds,
                "examples": response.num_examples,
            }
            for path, response in zip(paths, responses)
        ]
        print(experiments.render_rows(rows))
        for path, response in zip(paths, responses):
            if response.error:
                print(f"{path}: {response.error}", file=sys.stderr)
    failed = any(response.error for response in responses)
    if arguments.verify_certificates:
        solver = Solver()
        for path, response in zip(paths, responses):
            if response.verdict != "unrealizable":
                continue
            if not solver.verify(response, path, require_certificate=True):
                state = "missing" if response.certificate is None else "rejected"
                print(f"{path}: certificate {state}", file=sys.stderr)
                failed = True
    return 1 if failed else 0


def _run_verify(arguments: argparse.Namespace) -> int:
    if arguments.response == "-":
        text = sys.stdin.read()
    else:
        try:
            text = Path(arguments.response).read_text()
        except OSError as error:
            print(f"cannot read {arguments.response}: {error}", file=sys.stderr)
            return 1
    try:
        response = SolveResponse.from_json_text(text)
    except Exception as error:  # noqa: BLE001 — malformed payloads exit cleanly
        print(f"invalid response payload: {error}", file=sys.stderr)
        return 1
    problem = None
    if arguments.problem is not None:
        raw = arguments.problem
        problem = Path(raw) if raw.endswith(".sl") else raw
    verified = Solver().verify(
        response, problem, require_certificate=arguments.certificate
    )
    source = "certificate" if response.certificate is not None else "witness re-run"
    if verified:
        print(f"verified: {response.verdict} ({source})")
        return 0
    print(f"NOT verified: {response.verdict}", file=sys.stderr)
    return 1


def _run_certify(arguments: argparse.Namespace, engines: List[str]) -> int:
    """Sweep the registry: every unrealizable verdict must carry a
    certificate the independent checker accepts."""
    from repro.analysis import check_certificate

    names = engines if arguments.tool == "all" else [arguments.tool]
    benchmarks = [
        benchmark
        for benchmark in all_benchmarks(include_scaling=True)
        if benchmark.witness_examples is not None
        and len(benchmark.witness_examples) > 0
    ]
    if arguments.quick:
        benchmarks = benchmarks[:10]
    solver = Solver(timeout_seconds=arguments.timeout)
    certified = {name: 0 for name in names}
    unrealizable = {name: 0 for name in names}
    failures: List[dict] = []
    for benchmark in benchmarks:
        for name in names:
            response = solver.check(benchmark, engine=name)
            if response.verdict != "unrealizable":
                continue
            unrealizable[name] += 1
            if response.certificate is None:
                failures.append(
                    {"benchmark": benchmark.name, "engine": name, "why": "missing"}
                )
                continue
            result = check_certificate(benchmark.problem, response.certificate)
            if result:
                certified[name] += 1
            else:
                failures.append(
                    {
                        "benchmark": benchmark.name,
                        "engine": name,
                        "why": f"rejected: {result.reason}",
                    }
                )
    if arguments.json:
        print(
            json.dumps(
                {
                    "benchmarks": len(benchmarks),
                    "engines": names,
                    "unrealizable": unrealizable,
                    "certified": certified,
                    "failures": failures,
                },
                indent=2,
            )
        )
    else:
        for name in names:
            print(
                f"{name:10s} {certified[name]}/{unrealizable[name]} "
                "unrealizable verdicts certified"
            )
        for failure in failures:
            print(
                f"{failure['benchmark']} [{failure['engine']}]: {failure['why']}",
                file=sys.stderr,
            )
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
