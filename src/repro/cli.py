"""Command line entry point: ``repro-nay`` (also ``python -m repro.cli``).

Subcommands:

* ``solve <file.sl>``       — run the NAY CEGIS loop on a SyGuS-IF problem;
* ``check <benchmark>``     — run one unrealizability check on a named
  benchmark's witness example set with a chosen engine (``--examples N``
  overrides the witness example count);
* ``list``                  — list the benchmark suites;
* ``engines``               — list the registered engines;
* ``experiments <name>``    — shorthand for ``python -m repro.experiments``
  (``--workers N`` parallelizes, ``--out DIR`` persists JSONL results).

Engines are resolved through :mod:`repro.engine.registry`; any engine
registered with ``@register_engine`` is immediately available to every
subcommand.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence

from repro import experiments
from repro.engine.registry import create_engine, engine_names
from repro.semantics.examples import ExampleSet
from repro.suites import all_benchmarks, get_benchmark
from repro.suites.base import Benchmark
from repro.sygus import parse_sygus_file
from repro.utils.errors import ReproError


def _resize_examples(benchmark: Benchmark, count: int) -> ExampleSet:
    """An example set of exactly ``count`` examples for a benchmark.

    Starts from the recorded witness examples (they are the ones known to
    prove unrealizability) and tops up with seeded random examples when more
    are requested, so the result stays deterministic.
    """
    examples = list(benchmark.witness_examples or ExampleSet())[:count]
    rng = random.Random(0)
    collected = ExampleSet(examples)
    for _ in range(100 * count):
        if len(collected) >= count:
            break
        collected = collected.union(
            ExampleSet.random(benchmark.problem.variables, 1, rng, -50, 50)
        )
    if len(collected) < count:
        print(
            f"warning: only {len(collected)} distinct examples available "
            f"(requested {count})",
            file=sys.stderr,
        )
    return collected


def main(argv: Optional[Sequence[str]] = None) -> int:
    engines = engine_names()
    parser = argparse.ArgumentParser(prog="repro-nay", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    solve = subparsers.add_parser("solve", help="run the CEGIS loop on a .sl file")
    solve.add_argument("path")
    solve.add_argument("--tool", default="naySL", choices=engines)
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--timeout", type=float, default=600.0)

    check = subparsers.add_parser("check", help="check a named benchmark")
    check.add_argument("benchmark")
    check.add_argument("--tool", default="naySL", choices=engines)
    check.add_argument("--timeout", type=float, default=600.0)
    def _nonnegative(value: str) -> int:
        parsed = int(value)
        if parsed < 0:
            raise argparse.ArgumentTypeError("example count must be >= 0")
        return parsed

    check.add_argument(
        "--examples",
        type=_nonnegative,
        default=None,
        help="override the witness example count (truncate or top up, seeded)",
    )

    subparsers.add_parser("list", help="list all benchmarks")
    subparsers.add_parser("engines", help="list the registered engines")

    experiment = subparsers.add_parser("experiments", help="regenerate tables/figures")
    experiment.add_argument("name", choices=sorted(experiments.EXPERIMENTS) + ["all"])
    experiment.add_argument("--full", action="store_true")
    experiment.add_argument("--workers", type=int, default=1)
    experiment.add_argument("--out", default=None)

    arguments = parser.parse_args(argv)

    if arguments.command == "solve":
        problem = parse_sygus_file(arguments.path)
        engine = create_engine(
            arguments.tool, seed=arguments.seed, timeout_seconds=arguments.timeout
        )
        result = engine.solve(problem)
        print(f"verdict: {result.verdict.value}")
        if result.solution is not None:
            print(f"solution: {result.solution.to_sexpr()}")
        print(f"examples used: {result.num_examples}")
        print(f"time: {result.elapsed_seconds:.2f}s")
        return 0

    if arguments.command == "check":
        try:
            benchmark = get_benchmark(arguments.benchmark)
        except ReproError as error:
            print(error, file=sys.stderr)
            return 1
        engine = create_engine(arguments.tool, seed=0, timeout_seconds=arguments.timeout)
        examples = benchmark.witness_examples
        if arguments.examples is not None:
            examples = _resize_examples(benchmark, arguments.examples)
        if examples is None:
            print("benchmark has no recorded witness examples; running CEGIS instead")
            result = engine.solve(benchmark.problem)
            print(f"verdict: {result.verdict.value}")
            return 0
        result = engine.check(benchmark.problem, examples)
        print(f"verdict: {result.verdict.value} on {examples}")
        print(f"time: {result.elapsed_seconds:.2f}s")
        return 0

    if arguments.command == "list":
        for benchmark in all_benchmarks(include_scaling=True):
            stats = benchmark.problem.grammar
            print(
                f"{benchmark.suite:13s} {benchmark.name:20s} "
                f"|N|={stats.num_nonterminals:3d} |delta|={stats.num_productions:3d}"
            )
        return 0

    if arguments.command == "engines":
        for name in engines:
            print(name)
        return 0

    if arguments.command == "experiments":
        passthrough = [arguments.name, "--workers", str(arguments.workers)]
        if arguments.full:
            passthrough.append("--full")
        if arguments.out:
            passthrough.extend(["--out", arguments.out])
        return experiments.main(passthrough)

    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
