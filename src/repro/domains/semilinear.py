"""Semi-linear sets and their commutative idempotent omega-continuous semiring.

A *linear set* ``<u, {v1, ..., vn}>`` denotes ``{u + l1*v1 + ... + ln*vn |
li in N}`` (Def. 5.5); a *semi-linear set* is a finite union of linear sets.
The paper shows (Prop. 5.8) that semi-linear sets with

* ``combine``  (union, written ``(+)`` in the paper),
* ``extend``   (Minkowski sum with union of generators, written ``(x)``), and
* ``star``     (Eqn. (20)),

form a commutative, idempotent, omega-continuous semiring, which is what
Newton's method (Lem. 5.2) requires.  This module implements the domain, the
three operations, the projection ``projSL`` used by the CLIA machinery
(§6.2), symbolic concretization (§5.4), and the subsumption-based
simplification mentioned as optimisation (i) in §7.

Performance notes.  Both classes are hash-consed (:mod:`repro.utils.intern`)
into a *canonical form*: a linear set's generators are deduplicated and
sorted, a semi-linear set's linear sets are deduplicated and sorted.  Equal
values are therefore the same object, equality is a pointer comparison in
the common case, and hashes are computed once.  On top of the canonical
identities, :meth:`SemiLinearSet.simplify` and the subsumption check are
memoized in bounded LRU tables — the solvers re-simplify the same iterates
on every fixpoint round, and subsumption bottoms out in integer-feasibility
queries that are far too expensive to repeat.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.logic.formulas import Formula, atom_eq, atom_ge, conjunction, disjunction
from repro.logic.terms import LinearExpression
from repro.utils.errors import SolverLimitError
from repro.utils.intern import interner
from repro.utils.vectors import BoolVector, IntVector

_LINEAR_SETS = interner("LinearSet")
_SEMILINEAR_SETS = interner("SemiLinearSet")


class _BoundedMemo:
    """A tiny LRU memo table with hit/miss counters.

    Keys are interned domain values (hash cached, equality pointer-fast), so
    lookups are cheap; the bound keeps long-lived server processes from
    accumulating every simplification ever computed.  A lock serialises the
    LRU bookkeeping — ``repro-nay serve`` solves on ThreadingHTTPServer
    request threads, and an unlocked ``move_to_end`` can race an eviction.
    """

    __slots__ = ("name", "max_entries", "hits", "misses", "_table", "_lock")

    def __init__(self, name: str, max_entries: int = 4096):
        self.name = name
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._table: "OrderedDict[Hashable, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: Hashable):
        with self._lock:
            value = self._table.get(key)
            if value is not None:
                self._table.move_to_end(key)
                self.hits += 1
            else:
                self.misses += 1
            return value

    def put(self, key: Hashable, value) -> None:
        with self._lock:
            self._table[key] = value
            self._table.move_to_end(key)
            while len(self._table) > self.max_entries:
                self._table.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._table.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._table),
                "hits": self.hits,
                "misses": self.misses,
            }


_SIMPLIFY_MEMO = _BoundedMemo("simplify")
_SUBSUMES_MEMO = _BoundedMemo("subsumes", max_entries=16384)
#: Per-LinearSet membership solver contexts (the asserted skeleton of
#: :meth:`LinearSet.contains`); see the method for the key/assumption split.
_MEMBER_CONTEXTS = _BoundedMemo("member_contexts", max_entries=2048)


def semilinear_cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss statistics of the simplification and subsumption memos."""
    return {
        "simplify": _SIMPLIFY_MEMO.stats(),
        "subsumes": _SUBSUMES_MEMO.stats(),
        "member_contexts": _MEMBER_CONTEXTS.stats(),
    }


def clear_semilinear_caches() -> None:
    """Reset the simplification/subsumption memos and membership contexts."""
    _SIMPLIFY_MEMO.clear()
    _SUBSUMES_MEMO.clear()
    _MEMBER_CONTEXTS.clear()


class LinearSet:
    """A linear set ``<offset, generators>``, interned in canonical form.

    Canonicalization drops zero generators (they do not change the denoted
    set), deduplicates via a hash set, and sorts — so two constructions that
    denote the same ``<u, V>`` always produce the identical object, and
    canonicalization is idempotent by construction.
    """

    __slots__ = ("offset", "generators", "_hash", "__weakref__")

    offset: IntVector
    generators: Tuple[IntVector, ...]

    def __new__(cls, offset: IntVector, generators: Iterable[IntVector] = ()):
        cleaned = tuple(
            sorted(
                {generator for generator in generators if not generator.is_zero()},
                key=lambda vector: vector.values,
            )
        )
        key = (offset, cleaned)
        cached = _LINEAR_SETS.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "offset", offset)
        object.__setattr__(self, "generators", cleaned)
        object.__setattr__(self, "_hash", hash(key))
        return _LINEAR_SETS.add(key, self)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LinearSet instances are immutable")

    def __reduce__(self):
        return (LinearSet, (self.offset, self.generators))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, LinearSet)
            and self.offset == other.offset
            and self.generators == other.generators
        )

    def __hash__(self) -> int:
        return self._hash

    @property
    def dimension(self) -> int:
        return self.offset.dimension

    def sample(self, max_coefficient: int = 2) -> Iterator[IntVector]:
        """Enumerate a few concrete members (testing helper)."""
        def rec(index: int, current: IntVector) -> Iterator[IntVector]:
            if index == len(self.generators):
                yield current
                return
            for coefficient in range(max_coefficient + 1):
                yield from rec(
                    index + 1, current + self.generators[index].scale(coefficient)
                )

        yield from rec(0, self.offset)

    def contains(self, vector: IntVector) -> bool:
        """Exact membership via integer feasibility of the defining equations.

        The defining constraints — ``o_j = offset_j + sum lambda_i * g_i[j]``
        with ``lambda_i >= 0`` — depend only on ``self``, so they live in a
        cached :class:`~repro.logic.solver.SolverContext` asserted once per
        (interned) linear set; each membership query only swaps the
        ``o_j = v_j`` assumption atoms.  Subsumption asks this question for
        many offsets against the same container, and the skeleton reuse is
        what lets the solver's lemma/cache layers carry work across them.
        """
        if vector.dimension != self.dimension:
            return False
        if not self.generators:
            return self.offset == vector
        context = _MEMBER_CONTEXTS.get(self)
        if context is None:
            from repro.logic.solver import SolverContext

            context = SolverContext()
            names = [f"_lam_member_{i}" for i in range(len(self.generators))]
            for coordinate in range(self.dimension):
                expression = LinearExpression.constant_expr(self.offset[coordinate])
                for name, generator in zip(names, self.generators):
                    expression = expression + LinearExpression(
                        {name: generator[coordinate]}, 0
                    )
                output = LinearExpression.variable(f"_member_o{coordinate}")
                context.assert_formula(atom_eq(output, expression))
            for name in names:
                context.assert_formula(atom_ge(LinearExpression.variable(name), 0))
            _MEMBER_CONTEXTS.put(self, context)
        assumptions = [
            atom_eq(LinearExpression.variable(f"_member_o{coordinate}"), int(value))
            for coordinate, value in enumerate(vector)
        ]
        return context.check(assumptions).is_sat

    def project(self, mask: BoolVector) -> "LinearSet":
        """``projS``: zero out the coordinates where ``mask`` is false (§6.2)."""
        return LinearSet(
            self.offset.mask(mask),
            tuple(generator.mask(mask) for generator in self.generators),
        )

    def translate(self, other: "LinearSet") -> "LinearSet":
        """Minkowski sum of two linear sets (a single linear set again)."""
        return LinearSet(
            self.offset + other.offset, self.generators + other.generators
        )

    def symbolic(self, outputs: Sequence[LinearExpression], tag: str) -> Formula:
        """Symbolic concretization (§5.4): outputs = offset + sum lambda*gen."""
        constraints: List[Formula] = []
        names = [f"_lam_{tag}_{i}" for i in range(len(self.generators))]
        for coordinate, output in enumerate(outputs):
            expression = LinearExpression.constant_expr(self.offset[coordinate])
            for name, generator in zip(names, self.generators):
                expression = expression + LinearExpression(
                    {name: generator[coordinate]}, 0
                )
            constraints.append(atom_eq(output, expression))
        for name in names:
            constraints.append(atom_ge(LinearExpression.variable(name), 0))
        return conjunction(constraints)

    def _sort_key(self) -> Tuple:
        return (self.offset.values, tuple(g.values for g in self.generators))

    def __str__(self) -> str:
        generators = ", ".join(str(list(g.values)) for g in self.generators)
        return f"<{list(self.offset.values)}, {{{generators}}}>"

    def __repr__(self) -> str:
        return f"LinearSet(offset={self.offset!r}, generators={self.generators!r})"


class SemiLinearSet:
    """A finite union of linear sets, interned in canonical (sorted) form.

    The empty union is the semiring ``0``; ``{<0, {}>}`` is the semiring ``1``.
    """

    __slots__ = ("_linear_sets", "_dimension", "_hash", "__weakref__")

    def __new__(cls, linear_sets: Iterable[LinearSet] = (), dimension: int = 0):
        # Deduplicate (interned linear sets hash/compare fast) and sort so
        # that order of construction never influences identity.
        unique = tuple(
            sorted(dict.fromkeys(linear_sets), key=LinearSet._sort_key)
        )
        if unique:
            dimension = unique[0].dimension
        key = (unique, dimension)
        cached = _SEMILINEAR_SETS.get(key)
        if cached is not None:
            return cached
        self = object.__new__(cls)
        object.__setattr__(self, "_linear_sets", unique)
        object.__setattr__(self, "_dimension", dimension)
        object.__setattr__(self, "_hash", hash(unique))
        return _SEMILINEAR_SETS.add(key, self)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("SemiLinearSet instances are immutable")

    def __reduce__(self):
        return (SemiLinearSet, (self._linear_sets, self._dimension))

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty(dimension: int) -> "SemiLinearSet":
        """The semiring zero: the empty set of vectors."""
        return SemiLinearSet((), dimension)

    @staticmethod
    def unit(dimension: int) -> "SemiLinearSet":
        """The semiring one: the singleton {zero vector}."""
        return SemiLinearSet([LinearSet(IntVector.zero(dimension), ())], dimension)

    @staticmethod
    def singleton(vector: IntVector) -> "SemiLinearSet":
        """The singleton set containing one concrete vector."""
        return SemiLinearSet([LinearSet(vector, ())], vector.dimension)

    # -- accessors -----------------------------------------------------------

    @property
    def linear_sets(self) -> Tuple[LinearSet, ...]:
        return self._linear_sets

    @property
    def dimension(self) -> int:
        return self._dimension

    def is_empty(self) -> bool:
        return not self._linear_sets

    @property
    def size(self) -> int:
        """The size measure used in §5.3: sum over linear sets of |V_i| + 1."""
        return sum(len(ls.generators) + 1 for ls in self._linear_sets)

    # -- semiring operations --------------------------------------------------

    def combine(self, other: "SemiLinearSet") -> "SemiLinearSet":
        """``(+)``: set union."""
        self._check(other)
        if self is other:
            return self
        if not other._linear_sets and self._dimension >= other._dimension:
            return self
        if not self._linear_sets and other._dimension >= self._dimension:
            return other
        return SemiLinearSet(
            self._linear_sets + other._linear_sets,
            max(self._dimension, other._dimension),
        )

    def extend(self, other: "SemiLinearSet") -> "SemiLinearSet":
        """``(x)``: element-wise sums (Minkowski sum), per Eqn. before (20)."""
        self._check(other)
        if self.is_empty() or other.is_empty():
            return SemiLinearSet.empty(max(self._dimension, other._dimension))
        return SemiLinearSet(
            [
                left.translate(right)
                for left in self._linear_sets
                for right in other._linear_sets
            ],
            self._dimension,
        )

    def star(self) -> "SemiLinearSet":
        """Kleene star (Eqn. (20)): iterated extension including zero copies."""
        offset = IntVector.zero(self._dimension)
        generators: List[IntVector] = []
        for linear_set in self._linear_sets:
            if not linear_set.offset.is_zero():
                generators.append(linear_set.offset)
            generators.extend(linear_set.generators)
        return SemiLinearSet([LinearSet(offset, tuple(generators))], self._dimension)

    # -- domain operations ----------------------------------------------------

    def project(self, mask: BoolVector) -> "SemiLinearSet":
        """``projSL`` (§6.2): zero out coordinates where ``mask`` is false."""
        return SemiLinearSet(
            [linear_set.project(mask) for linear_set in self._linear_sets],
            self._dimension,
        )

    def contains(self, vector: IntVector) -> bool:
        return any(linear_set.contains(vector) for linear_set in self._linear_sets)

    def leq(self, other: "SemiLinearSet") -> bool:
        """The induced order ``a <= b  iff  a (+) b = b`` — here syntactic:
        every linear set of ``self`` appears in (or is subsumed by) ``other``."""
        if self is other:
            return True
        return all(
            linear_set in other._linear_sets
            or any(_subsumes(candidate, linear_set) for candidate in other._linear_sets)
            for linear_set in self._linear_sets
        )

    def simplify(self) -> "SemiLinearSet":
        """Remove linear sets subsumed by another linear set (§7, opt. (i)).

        Subsumption is checked with a sound, incomplete criterion (see
        :func:`_subsumes`), so simplification never changes the denoted set.
        Results are memoized on the interned identity of ``self``; the
        result is itself subsumption-free, so it is recorded as its own
        fixpoint and re-simplifying it is a cache hit.
        """
        # The memo key includes the dimension: __eq__ deliberately ignores it
        # (empty sets of any dimension are interchangeable as values), but the
        # *result* returned here must keep self's dimension.
        memo_key = (self._linear_sets, self._dimension)
        cached = _SIMPLIFY_MEMO.get(memo_key)
        if cached is not None:
            return cached
        sets = self._linear_sets
        kept: List[LinearSet] = []
        for index, candidate in enumerate(sets):
            subsumed = False
            for other_index, other in enumerate(sets):
                if other_index == index:
                    continue
                if not _subsumes(other, candidate):
                    continue
                if _subsumes(candidate, other) and index < other_index:
                    # Equal denotations: keep the earlier of the two copies.
                    continue
                subsumed = True
                break
            if not subsumed:
                kept.append(candidate)
        result = self if len(kept) == len(sets) else SemiLinearSet(kept, self._dimension)
        _SIMPLIFY_MEMO.put(memo_key, result)
        if result is not self:
            _SIMPLIFY_MEMO.put((result._linear_sets, result._dimension), result)
        return result

    def symbolic(self, outputs: Sequence[LinearExpression], tag: str = "") -> Formula:
        """Symbolic concretization ``gamma_hat`` (Eqn. (26)).

        ``tag`` namespaces the existential ``lambda`` parameters so that two
        different semi-linear sets can be concretized inside one formula (as
        ``LessThan#`` does) without their parameters colliding.
        """
        if not self._linear_sets:
            from repro.logic.formulas import FALSE

            return FALSE
        return disjunction(
            [
                linear_set.symbolic(outputs, tag=f"{tag}{index}")
                for index, linear_set in enumerate(self._linear_sets)
            ]
        )

    def sample(self, max_coefficient: int = 2, limit: int = 200) -> List[IntVector]:
        """A few concrete member vectors (testing helper)."""
        members: List[IntVector] = []
        for linear_set in self._linear_sets:
            for vector in linear_set.sample(max_coefficient):
                if vector not in members:
                    members.append(vector)
                if len(members) >= limit:
                    return members
        return members

    # -- misc -----------------------------------------------------------------

    def _check(self, other: "SemiLinearSet") -> None:
        if (
            not self.is_empty()
            and not other.is_empty()
            and self._dimension != other._dimension
        ):
            raise ValueError("semi-linear sets have different dimensions")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, SemiLinearSet):
            return NotImplemented
        # Canonical form makes the tuple comparison order-insensitive; the
        # dimension is deliberately not compared (two empty sets of different
        # dimensions are interchangeable, matching the semiring's 0).
        return self._linear_sets == other._linear_sets

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        if not self._linear_sets:
            return "{}"
        return "{" + ", ".join(str(ls) for ls in self._linear_sets) + "}"

    def __repr__(self) -> str:
        return f"SemiLinearSet({self})"


def _subsumes(container: LinearSet, candidate: LinearSet) -> bool:
    """Sound check that ``candidate``'s denotation is inside ``container``'s.

    The criterion: every generator of ``candidate`` must literally be a
    generator of ``container``, and ``candidate``'s offset must be reachable
    from ``container``'s offset using ``container``'s generators (an integer
    feasibility query).  This is sufficient but not necessary, which is all
    the simplification needs.  Verdicts are memoized on the interned pair —
    the feasibility query dominates simplification time and the fixpoint
    solvers re-ask the same pairs on every iteration.
    """
    if container is candidate:
        return True
    if container.dimension != candidate.dimension:
        return False
    key = (container, candidate)
    cached = _SUBSUMES_MEMO.get(key)
    if cached is not None:
        return cached
    verdict = _subsumes_uncached(container, candidate)
    _SUBSUMES_MEMO.put(key, verdict)
    return verdict


def _subsumes_uncached(container: LinearSet, candidate: LinearSet) -> bool:
    container_generators = set(container.generators)
    if not all(generator in container_generators for generator in candidate.generators):
        return False
    try:
        return container.contains(candidate.offset)
    except SolverLimitError:  # pragma: no cover - defensive
        return False
