"""Semi-linear sets and their commutative idempotent omega-continuous semiring.

A *linear set* ``<u, {v1, ..., vn}>`` denotes ``{u + l1*v1 + ... + ln*vn |
li in N}`` (Def. 5.5); a *semi-linear set* is a finite union of linear sets.
The paper shows (Prop. 5.8) that semi-linear sets with

* ``combine``  (union, written ``(+)`` in the paper),
* ``extend``   (Minkowski sum with union of generators, written ``(x)``), and
* ``star``     (Eqn. (20)),

form a commutative, idempotent, omega-continuous semiring, which is what
Newton's method (Lem. 5.2) requires.  This module implements the domain, the
three operations, the projection ``projSL`` used by the CLIA machinery
(§6.2), symbolic concretization (§5.4), and the subsumption-based
simplification mentioned as optimisation (i) in §7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.logic.formulas import Formula, atom_eq, atom_ge, conjunction, disjunction
from repro.logic.terms import LinearExpression
from repro.utils.errors import SolverLimitError
from repro.utils.vectors import BoolVector, IntVector


@dataclass(frozen=True)
class LinearSet:
    """A linear set ``<offset, generators>`` of integer vectors."""

    offset: IntVector
    generators: Tuple[IntVector, ...]

    def __post_init__(self) -> None:
        # Deduplicate and drop zero generators; they do not change the set.
        cleaned: List[IntVector] = []
        for generator in self.generators:
            if generator.is_zero():
                continue
            if generator not in cleaned:
                cleaned.append(generator)
        object.__setattr__(
            self, "generators", tuple(sorted(cleaned, key=lambda v: v.values))
        )

    @property
    def dimension(self) -> int:
        return self.offset.dimension

    def sample(self, max_coefficient: int = 2) -> Iterator[IntVector]:
        """Enumerate a few concrete members (testing helper)."""
        def rec(index: int, current: IntVector) -> Iterator[IntVector]:
            if index == len(self.generators):
                yield current
                return
            for coefficient in range(max_coefficient + 1):
                yield from rec(
                    index + 1, current + self.generators[index].scale(coefficient)
                )

        yield from rec(0, self.offset)

    def contains(self, vector: IntVector) -> bool:
        """Exact membership via integer feasibility of the defining equations."""
        if vector.dimension != self.dimension:
            return False
        if not self.generators:
            return self.offset == vector
        outputs = [LinearExpression.constant_expr(value) for value in vector]
        membership = self.symbolic(outputs, tag="member")
        from repro.logic.solver import check_sat

        return check_sat(membership).is_sat

    def project(self, mask: BoolVector) -> "LinearSet":
        """``projS``: zero out the coordinates where ``mask`` is false (§6.2)."""
        return LinearSet(
            self.offset.mask(mask),
            tuple(generator.mask(mask) for generator in self.generators),
        )

    def translate(self, other: "LinearSet") -> "LinearSet":
        """Minkowski sum of two linear sets (a single linear set again)."""
        return LinearSet(
            self.offset + other.offset, self.generators + other.generators
        )

    def symbolic(self, outputs: Sequence[LinearExpression], tag: str) -> Formula:
        """Symbolic concretization (§5.4): outputs = offset + sum lambda*gen."""
        constraints: List[Formula] = []
        names = [f"_lam_{tag}_{i}" for i in range(len(self.generators))]
        for coordinate, output in enumerate(outputs):
            expression = LinearExpression.constant_expr(self.offset[coordinate])
            for name, generator in zip(names, self.generators):
                expression = expression + LinearExpression(
                    {name: generator[coordinate]}, 0
                )
            constraints.append(atom_eq(output, expression))
        for name in names:
            constraints.append(atom_ge(LinearExpression.variable(name), 0))
        return conjunction(constraints)

    def __str__(self) -> str:
        generators = ", ".join(str(list(g.values)) for g in self.generators)
        return f"<{list(self.offset.values)}, {{{generators}}}>"


class SemiLinearSet:
    """A finite union of linear sets, with semiring operations.

    The empty union is the semiring ``0``; ``{<0, {}>}`` is the semiring ``1``.
    """

    __slots__ = ("_linear_sets", "_dimension")

    def __init__(self, linear_sets: Iterable[LinearSet] = (), dimension: int = 0):
        sets: List[LinearSet] = []
        for linear_set in linear_sets:
            if linear_set not in sets:
                sets.append(linear_set)
        self._linear_sets: Tuple[LinearSet, ...] = tuple(sets)
        if self._linear_sets:
            self._dimension = self._linear_sets[0].dimension
        else:
            self._dimension = dimension

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty(dimension: int) -> "SemiLinearSet":
        """The semiring zero: the empty set of vectors."""
        return SemiLinearSet((), dimension)

    @staticmethod
    def unit(dimension: int) -> "SemiLinearSet":
        """The semiring one: the singleton {zero vector}."""
        return SemiLinearSet([LinearSet(IntVector.zero(dimension), ())], dimension)

    @staticmethod
    def singleton(vector: IntVector) -> "SemiLinearSet":
        """The singleton set containing one concrete vector."""
        return SemiLinearSet([LinearSet(vector, ())], vector.dimension)

    # -- accessors -----------------------------------------------------------

    @property
    def linear_sets(self) -> Tuple[LinearSet, ...]:
        return self._linear_sets

    @property
    def dimension(self) -> int:
        return self._dimension

    def is_empty(self) -> bool:
        return not self._linear_sets

    @property
    def size(self) -> int:
        """The size measure used in §5.3: sum over linear sets of |V_i| + 1."""
        return sum(len(ls.generators) + 1 for ls in self._linear_sets)

    # -- semiring operations --------------------------------------------------

    def combine(self, other: "SemiLinearSet") -> "SemiLinearSet":
        """``(+)``: set union."""
        self._check(other)
        return SemiLinearSet(
            self._linear_sets + other._linear_sets,
            max(self._dimension, other._dimension),
        )

    def extend(self, other: "SemiLinearSet") -> "SemiLinearSet":
        """``(x)``: element-wise sums (Minkowski sum), per Eqn. before (20)."""
        self._check(other)
        if self.is_empty() or other.is_empty():
            return SemiLinearSet.empty(max(self._dimension, other._dimension))
        return SemiLinearSet(
            [
                left.translate(right)
                for left in self._linear_sets
                for right in other._linear_sets
            ],
            self._dimension,
        )

    def star(self) -> "SemiLinearSet":
        """Kleene star (Eqn. (20)): iterated extension including zero copies."""
        offset = IntVector.zero(self._dimension)
        generators: List[IntVector] = []
        for linear_set in self._linear_sets:
            if not linear_set.offset.is_zero():
                generators.append(linear_set.offset)
            generators.extend(linear_set.generators)
        return SemiLinearSet([LinearSet(offset, tuple(generators))], self._dimension)

    # -- domain operations ----------------------------------------------------

    def project(self, mask: BoolVector) -> "SemiLinearSet":
        """``projSL`` (§6.2): zero out coordinates where ``mask`` is false."""
        return SemiLinearSet(
            [linear_set.project(mask) for linear_set in self._linear_sets],
            self._dimension,
        )

    def contains(self, vector: IntVector) -> bool:
        return any(linear_set.contains(vector) for linear_set in self._linear_sets)

    def leq(self, other: "SemiLinearSet") -> bool:
        """The induced order ``a <= b  iff  a (+) b = b`` — here syntactic:
        every linear set of ``self`` appears in (or is subsumed by) ``other``."""
        return all(
            linear_set in other._linear_sets
            or any(_subsumes(candidate, linear_set) for candidate in other._linear_sets)
            for linear_set in self._linear_sets
        )

    def simplify(self) -> "SemiLinearSet":
        """Remove linear sets subsumed by another linear set (§7, opt. (i)).

        Subsumption is checked with a sound, incomplete criterion (see
        :func:`_subsumes`), so simplification never changes the denoted set.
        """
        sets = list(self._linear_sets)
        kept: List[LinearSet] = []
        for index, candidate in enumerate(sets):
            subsumed = False
            for other_index, other in enumerate(sets):
                if other_index == index:
                    continue
                if not _subsumes(other, candidate):
                    continue
                if _subsumes(candidate, other) and index < other_index:
                    # Equal denotations: keep the earlier of the two copies.
                    continue
                subsumed = True
                break
            if not subsumed:
                kept.append(candidate)
        return SemiLinearSet(kept, self._dimension)

    def symbolic(self, outputs: Sequence[LinearExpression], tag: str = "") -> Formula:
        """Symbolic concretization ``gamma_hat`` (Eqn. (26)).

        ``tag`` namespaces the existential ``lambda`` parameters so that two
        different semi-linear sets can be concretized inside one formula (as
        ``LessThan#`` does) without their parameters colliding.
        """
        if not self._linear_sets:
            from repro.logic.formulas import FALSE

            return FALSE
        return disjunction(
            [
                linear_set.symbolic(outputs, tag=f"{tag}{index}")
                for index, linear_set in enumerate(self._linear_sets)
            ]
        )

    def sample(self, max_coefficient: int = 2, limit: int = 200) -> List[IntVector]:
        """A few concrete member vectors (testing helper)."""
        members: List[IntVector] = []
        for linear_set in self._linear_sets:
            for vector in linear_set.sample(max_coefficient):
                if vector not in members:
                    members.append(vector)
                if len(members) >= limit:
                    return members
        return members

    # -- misc -----------------------------------------------------------------

    def _check(self, other: "SemiLinearSet") -> None:
        if (
            not self.is_empty()
            and not other.is_empty()
            and self._dimension != other._dimension
        ):
            raise ValueError("semi-linear sets have different dimensions")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SemiLinearSet):
            return NotImplemented
        return set(self._linear_sets) == set(other._linear_sets)

    def __hash__(self) -> int:
        return hash(frozenset(self._linear_sets))

    def __str__(self) -> str:
        if not self._linear_sets:
            return "{}"
        return "{" + ", ".join(str(ls) for ls in self._linear_sets) + "}"

    def __repr__(self) -> str:
        return f"SemiLinearSet({self})"


def _subsumes(container: LinearSet, candidate: LinearSet) -> bool:
    """Sound check that ``candidate``'s denotation is inside ``container``'s.

    The criterion: every generator of ``candidate`` must literally be a
    generator of ``container``, and ``candidate``'s offset must be reachable
    from ``container``'s offset using ``container``'s generators (an integer
    feasibility query).  This is sufficient but not necessary, which is all
    the simplification needs.
    """
    if container.dimension != candidate.dimension:
        return False
    container_generators = set(container.generators)
    if not all(generator in container_generators for generator in candidate.generators):
        return False
    try:
        return container.contains(candidate.offset)
    except SolverLimitError:  # pragma: no cover - defensive
        return False
