"""Domain combinators: the generic reduced product.

:class:`ReducedProductDomain` runs two :class:`~repro.domains.base.
ExampleVectorDomain` abstractions side by side over the same grammar and
*reduces* between them wherever the shared representation allows:

* comparisons — each component produces a set of reachable truth vectors;
  the product takes their **intersection**, so a guard refuted by either
  component is refuted in the product (this is where a coarse-but-different
  pair beats either member);
* emptiness — a pair with one empty component is normalized to the pair of
  bottoms (the concretization of a product is the intersection of the
  component concretizations, so one empty side empties the value);
* the check — ``UNREALIZABLE`` if either component refutes, ``REALIZABLE``
  only if an *exact* component claims it, ``UNKNOWN`` otherwise.

Registered as ``"product"`` with the component names as knobs::

    create_domain("product")                                  # interval x powerset
    create_domain("product", left="interval", right="numeric")
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.domains.base import ExampleVectorDomain
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.registry import register_domain
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult, Verdict
from repro.utils.errors import SemanticsError
from repro.utils.vectors import IntVector


@dataclass(frozen=True)
class PairValue:
    """An integer-sorted value of the reduced product: one value per component."""

    left: object
    right: object

    def __str__(self) -> str:
        return f"({self.left} & {self.right})"


@register_domain("product")
class ReducedProductDomain(ExampleVectorDomain):
    """Reduced product of two example-vector domains."""

    def __init__(self, left: str = "interval", right: str = "powerset"):
        from repro.domains.registry import resolve_domain

        self.left = resolve_domain(left)
        self.right = resolve_domain(right)
        if not isinstance(self.left, ExampleVectorDomain) or not isinstance(
            self.right, ExampleVectorDomain
        ):
            raise SemanticsError(
                "the reduced product combines ExampleVectorDomain components"
            )
        #: Set by :meth:`pre_check` when the right component bowed out for
        #: this check (e.g. the powerset domain past its example budget).
        #: The product then runs on the left component alone — degrading
        #: one member must not discard the other member's refutation power.
        self._right_inert = False

    @property
    def name(self) -> str:
        return f"{self.left.name}*{self.right.name}"

    # -- reduction -------------------------------------------------------------

    def _reduce(self, value: PairValue, dimension: int) -> PairValue:
        if self._right_inert:
            return value
        left_empty = getattr(value.left, "is_empty", lambda: False)()
        right_empty = getattr(value.right, "is_empty", lambda: False)()
        if left_empty != right_empty:
            return PairValue(
                self.left.int_bottom(dimension), self.right.int_bottom(dimension)
            )
        return value

    @staticmethod
    def _dimension(value: PairValue) -> int:
        return getattr(value.left, "dimension", 0)

    # -- integer-sort hooks ----------------------------------------------------

    def int_bottom(self, dimension: int) -> PairValue:
        return PairValue(
            self.left.int_bottom(dimension),
            None if self._right_inert else self.right.int_bottom(dimension),
        )

    def int_join(self, left: PairValue, right: PairValue) -> PairValue:
        return PairValue(
            self.left.int_join(left.left, right.left),
            None
            if self._right_inert
            else self.right.int_join(left.right, right.right),
        )

    def int_widen(self, previous: PairValue, current: PairValue) -> PairValue:
        return PairValue(
            self.left.int_widen(previous.left, current.left),
            None
            if self._right_inert
            else self.right.int_widen(previous.right, current.right),
        )

    def int_equal(self, left: PairValue, right: PairValue) -> bool:
        if not self.left.int_equal(left.left, right.left):
            return False
        return self._right_inert or self.right.int_equal(left.right, right.right)

    def from_vector(self, vector: IntVector) -> PairValue:
        return PairValue(
            self.left.from_vector(vector),
            None if self._right_inert else self.right.from_vector(vector),
        )

    def int_add(self, left: PairValue, right: PairValue) -> PairValue:
        value = PairValue(
            self.left.int_add(left.left, right.left),
            None
            if self._right_inert
            else self.right.int_add(left.right, right.right),
        )
        return self._reduce(value, self._dimension(value))

    def ite(
        self,
        guards: BoolVectorSet,
        then_value: PairValue,
        else_value: PairValue,
        dimension: int,
    ) -> PairValue:
        value = PairValue(
            self.left.ite(guards, then_value.left, else_value.left, dimension),
            None
            if self._right_inert
            else self.right.ite(guards, then_value.right, else_value.right, dimension),
        )
        return self._reduce(value, dimension)

    def compare(
        self, name: str, left: PairValue, right: PairValue, dimension: int
    ) -> BoolVectorSet:
        truth = self.left.compare(name, left.left, right.left, dimension)
        if self._right_inert:
            return truth
        return truth.intersect(
            self.right.compare(name, left.right, right.right, dimension)
        )

    # -- the check -------------------------------------------------------------

    def pre_check(self, examples: ExampleSet) -> Optional[CheckResult]:
        """Bail out only when *every* component bails.

        A component that bows out (the powerset domain past its example
        budget) is marked inert for this check and skipped by every hook,
        so the surviving component keeps its full refutation power — the
        product must never be weaker than its own members.
        """
        left_out = self.left.pre_check(examples)
        right_out = self.right.pre_check(examples)
        if left_out is not None and right_out is not None:
            return right_out
        if left_out is not None:
            # Swap so the surviving component drives; the pair then runs
            # single-sided with the survivor on the left.
            self.left, self.right = self.right, self.left
            self._right_inert = True
        elif right_out is not None:
            self._right_inert = True
        return None

    def check(
        self, start_value: PairValue, spec: Specification, examples: ExampleSet
    ) -> CheckResult:
        left = self.left.check(start_value.left, spec, examples)
        if left.verdict == Verdict.UNREALIZABLE or self._right_inert:
            left.details["component"] = self.left.name
            if self._right_inert:
                left.details["inert_component"] = True
            return left
        right = self.right.check(start_value.right, spec, examples)
        right.details["component"] = self.right.name
        if right.verdict in (Verdict.UNREALIZABLE, Verdict.REALIZABLE):
            return right
        if left.verdict == Verdict.REALIZABLE:
            left.details["component"] = self.left.name
            return left
        return right
