"""Sets of Boolean vectors: the exact abstract domain for Boolean nonterminals.

For an example set of size ``d`` a Boolean-valued term evaluates to a vector
in ``B^d``; the abstraction of a Boolean nonterminal is the *set* of vectors
its terms can produce (§6.2).  The domain is finite (at most ``2^d``
elements), which is what makes the iterative algorithms SolveBool (§6.3) and
SolveMutual (§6.4) terminate.

The pairwise transfers (``And#``/``Or#``/``Not#``) run over the vectors'
*packed* representation: each interned :class:`BoolVector` caches its bits
as one Python int, so an element-wise conjunction over a ``d``-example pair
is a single ``&`` instead of a ``d``-step loop, and results are deduplicated
as ints before any vector object is interned.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator

from repro.utils.vectors import BoolVector


class BoolVectorSet:
    """An immutable set of Boolean vectors of a fixed dimension."""

    __slots__ = ("_vectors", "_dimension")

    def __init__(self, vectors: Iterable[BoolVector] = (), dimension: int = 0):
        frozen = frozenset(vectors)
        self._vectors: FrozenSet[BoolVector] = frozen
        if frozen:
            self._dimension = next(iter(frozen)).dimension
        else:
            self._dimension = dimension

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty(dimension: int) -> "BoolVectorSet":
        return BoolVectorSet((), dimension)

    @staticmethod
    def singleton(vector: BoolVector) -> "BoolVectorSet":
        return BoolVectorSet([vector], vector.dimension)

    @staticmethod
    def top(dimension: int) -> "BoolVectorSet":
        """All 2^dimension vectors (used by the approximate mode)."""
        return BoolVectorSet(BoolVector.enumerate_all(dimension), dimension)

    @staticmethod
    def from_packed(bit_patterns: Iterable[int], dimension: int) -> "BoolVectorSet":
        """Build from deduplicated packed bit patterns (transfer results)."""
        return BoolVectorSet(
            [BoolVector.from_packed(bits, dimension) for bits in bit_patterns],
            dimension,
        )

    # -- accessors -----------------------------------------------------------

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def vectors(self) -> FrozenSet[BoolVector]:
        return self._vectors

    def is_empty(self) -> bool:
        return not self._vectors

    def __len__(self) -> int:
        return len(self._vectors)

    def __iter__(self) -> Iterator[BoolVector]:
        return iter(sorted(self._vectors, key=lambda v: v.values))

    def __contains__(self, vector: BoolVector) -> bool:
        return vector in self._vectors

    # -- lattice / abstract operations ----------------------------------------

    def combine(self, other: "BoolVectorSet") -> "BoolVectorSet":
        """``(+)`` on the Boolean side of the multi-sorted domain: set union."""
        return BoolVectorSet(
            self._vectors | other._vectors, max(self._dimension, other._dimension)
        )

    def intersect(self, other: "BoolVectorSet") -> "BoolVectorSet":
        """Set intersection: the reduction step of product domains.

        Two sound abstractions of the same Boolean nonterminal each
        over-approximate the reachable truth-vector set, so their
        intersection is still an over-approximation — and at least as
        precise as either side.
        """
        return BoolVectorSet(
            self._vectors & other._vectors, max(self._dimension, other._dimension)
        )

    def leq(self, other: "BoolVectorSet") -> bool:
        return self._vectors <= other._vectors

    def negate(self) -> "BoolVectorSet":
        """``Not#``: element-wise negation of every vector."""
        full = (1 << self._dimension) - 1
        return BoolVectorSet.from_packed(
            {~vector.bits & full for vector in self._vectors}, self._dimension
        )

    def conjoin(self, other: "BoolVectorSet") -> "BoolVectorSet":
        """``And#``: element-wise conjunction over all pairs (packed)."""
        left_bits = [vector.bits for vector in self._vectors]
        right_bits = [vector.bits for vector in other._vectors]
        return BoolVectorSet.from_packed(
            {a & b for a in left_bits for b in right_bits},
            max(self._dimension, other._dimension),
        )

    def disjoin(self, other: "BoolVectorSet") -> "BoolVectorSet":
        """``Or#``: element-wise disjunction over all pairs (packed)."""
        left_bits = [vector.bits for vector in self._vectors]
        right_bits = [vector.bits for vector in other._vectors]
        return BoolVectorSet.from_packed(
            {a | b for a in left_bits for b in right_bits},
            max(self._dimension, other._dimension),
        )

    # -- misc -----------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoolVectorSet):
            return NotImplemented
        return self._vectors == other._vectors

    def __hash__(self) -> int:
        return hash(self._vectors)

    def __str__(self) -> str:
        rendered = ", ".join(
            "(" + ", ".join("t" if bit else "f" for bit in vector) + ")"
            for vector in self
        )
        return "{" + rendered + "}"

    def __repr__(self) -> str:
        return f"BoolVectorSet({self})"
