"""Approximate numeric abstract domains for the Horn-clause/Kleene mode (§4.3).

The paper's approximate mode encodes the GFA equations as constrained Horn
clauses and hands them to Spacer.  Spacer is not available offline, so the
reproduction's approximate engine instead runs Kleene iteration with widening
over a reduced product of two classic numeric domains, applied component-wise
to the example vector:

* :class:`Interval` — value ranges with the standard widening (§4.3 mentions
  widening-based Kleene iteration as the generic sound-but-incomplete
  instantiation of the framework);
* :class:`Congruence` — values of the form ``r + m*Z``, which captures the
  "every term is a multiple of 3x" style of invariant that the motivating
  example of §1/§2 needs.

Boolean nonterminals keep using the exact Boolean-vector-set domain (it is
finite).  The product transformer is sound but deliberately *not* exact, so
the approximate engine returns three-valued answers (Thm. 4.5(1)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.logic.formulas import Formula, TRUE, atom_eq, atom_ge, atom_le, conjunction
from repro.logic.terms import LinearExpression
from repro.utils.vectors import BoolVector, IntVector

_NEG_INF = None  # encoded as None in the lower bound
_POS_INF = None  # encoded as None in the upper bound


@dataclass(frozen=True)
class Interval:
    """A possibly-unbounded integer interval ``[low, high]`` (None = infinite).

    The empty interval is represented by ``low=0, high=-1`` via
    :meth:`Interval.empty`.
    """

    low: Optional[int]
    high: Optional[int]

    @staticmethod
    def empty() -> "Interval":
        return Interval(0, -1)

    @staticmethod
    def constant(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    def is_empty(self) -> bool:
        return self.low is not None and self.high is not None and self.low > self.high

    def join(self, other: "Interval") -> "Interval":
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        low = None if self.low is None or other.low is None else min(self.low, other.low)
        high = (
            None if self.high is None or other.high is None else max(self.high, other.high)
        )
        return Interval(low, high)

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to infinity."""
        if self.is_empty():
            return other
        if other.is_empty():
            return self
        low = self.low
        if other.low is None or (low is not None and other.low < low):
            low = None
        high = self.high
        if other.high is None or (high is not None and other.high > high):
            high = None
        return Interval(low, high)

    def add(self, other: "Interval") -> "Interval":
        if self.is_empty() or other.is_empty():
            return Interval.empty()
        low = None if self.low is None or other.low is None else self.low + other.low
        high = (
            None if self.high is None or other.high is None else self.high + other.high
        )
        return Interval(low, high)

    def negate(self) -> "Interval":
        if self.is_empty():
            return self
        low = None if self.high is None else -self.high
        high = None if self.low is None else -self.low
        return Interval(low, high)

    def leq(self, other: "Interval") -> bool:
        if self.is_empty():
            return True
        if other.is_empty():
            return False
        low_ok = other.low is None or (self.low is not None and self.low >= other.low)
        high_ok = other.high is None or (
            self.high is not None and self.high <= other.high
        )
        return low_ok and high_ok

    def contains(self, value: int) -> bool:
        if self.is_empty():
            return False
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def symbolic(self, output: LinearExpression) -> Formula:
        if self.is_empty():
            from repro.logic.formulas import FALSE

            return FALSE
        constraints = []
        if self.low is not None:
            constraints.append(atom_ge(output, self.low))
        if self.high is not None:
            constraints.append(atom_le(output, self.high))
        return conjunction(constraints) if constraints else TRUE

    def __str__(self) -> str:
        if self.is_empty():
            return "[]"
        low = "-inf" if self.low is None else str(self.low)
        high = "+inf" if self.high is None else str(self.high)
        return f"[{low}, {high}]"


@dataclass(frozen=True)
class Congruence:
    """The congruence domain: the set ``remainder + modulus * Z``.

    ``modulus == 0`` denotes the single value ``remainder``; ``modulus == 1``
    denotes all integers (top).  The empty set is ``Congruence(0, 0, empty=True)``
    via :meth:`Congruence.empty`.
    """

    remainder: int
    modulus: int
    empty: bool = False

    @staticmethod
    def empty_value() -> "Congruence":
        return Congruence(0, 0, empty=True)

    @staticmethod
    def constant(value: int) -> "Congruence":
        return Congruence(value, 0)

    @staticmethod
    def top() -> "Congruence":
        return Congruence(0, 1)

    def is_empty(self) -> bool:
        return self.empty

    def _normalised(self) -> "Congruence":
        if self.empty:
            return self
        if self.modulus == 0:
            return self
        return Congruence(self.remainder % self.modulus, self.modulus)

    def join(self, other: "Congruence") -> "Congruence":
        if self.empty:
            return other
        if other.empty:
            return self
        left = self._normalised()
        right = other._normalised()
        modulus = math.gcd(
            math.gcd(left.modulus, right.modulus), abs(left.remainder - right.remainder)
        )
        if modulus == 0:
            return Congruence(left.remainder, 0)
        return Congruence(left.remainder % modulus, modulus)

    def widen(self, other: "Congruence") -> "Congruence":
        # The congruence lattice has no infinite ascending chains (moduli only
        # ever divide), so widening is plain join.
        return self.join(other)

    def add(self, other: "Congruence") -> "Congruence":
        if self.empty or other.empty:
            return Congruence.empty_value()
        modulus = math.gcd(self.modulus, other.modulus)
        remainder = self.remainder + other.remainder
        if modulus == 0:
            return Congruence(remainder, 0)
        return Congruence(remainder % modulus, modulus)

    def negate(self) -> "Congruence":
        if self.empty:
            return self
        if self.modulus == 0:
            return Congruence(-self.remainder, 0)
        return Congruence((-self.remainder) % self.modulus, self.modulus)

    def leq(self, other: "Congruence") -> bool:
        if self.empty:
            return True
        if other.empty:
            return False
        left = self._normalised()
        right = other._normalised()
        if right.modulus == 0:
            return left.modulus == 0 and left.remainder == right.remainder
        return (
            left.modulus % right.modulus == 0 or left.modulus == 0
        ) and (left.remainder - right.remainder) % right.modulus == 0

    def contains(self, value: int) -> bool:
        if self.empty:
            return False
        if self.modulus == 0:
            return value == self.remainder
        return (value - self.remainder) % self.modulus == 0

    def symbolic(self, output: LinearExpression, tag: str) -> Formula:
        if self.empty:
            from repro.logic.formulas import FALSE

            return FALSE
        if self.modulus == 0:
            return atom_eq(output, self.remainder)
        if self.modulus == 1:
            return TRUE
        witness = LinearExpression.variable(f"_cong_{tag}")
        return atom_eq(output, witness.scale(self.modulus) + self.remainder)

    def __str__(self) -> str:
        if self.empty:
            return "bot"
        if self.modulus == 0:
            return f"{{{self.remainder}}}"
        return f"{self.remainder} + {self.modulus}Z"


@dataclass(frozen=True)
class ProductValue:
    """The reduced product (interval, congruence) applied per example component."""

    intervals: Tuple[Interval, ...]
    congruences: Tuple[Congruence, ...]

    @staticmethod
    def bottom(dimension: int) -> "ProductValue":
        return ProductValue(
            tuple(Interval.empty() for _ in range(dimension)),
            tuple(Congruence.empty_value() for _ in range(dimension)),
        )

    @staticmethod
    def constant(vector: IntVector) -> "ProductValue":
        return ProductValue(
            tuple(Interval.constant(value) for value in vector),
            tuple(Congruence.constant(value) for value in vector),
        )

    @property
    def dimension(self) -> int:
        return len(self.intervals)

    def is_empty(self) -> bool:
        return any(interval.is_empty() for interval in self.intervals) or any(
            congruence.is_empty() for congruence in self.congruences
        )

    def join(self, other: "ProductValue") -> "ProductValue":
        return ProductValue(
            tuple(a.join(b) for a, b in zip(self.intervals, other.intervals)),
            tuple(a.join(b) for a, b in zip(self.congruences, other.congruences)),
        )

    def widen(self, other: "ProductValue") -> "ProductValue":
        return ProductValue(
            tuple(a.widen(b) for a, b in zip(self.intervals, other.intervals)),
            tuple(a.widen(b) for a, b in zip(self.congruences, other.congruences)),
        )

    def add(self, other: "ProductValue") -> "ProductValue":
        return ProductValue(
            tuple(a.add(b) for a, b in zip(self.intervals, other.intervals)),
            tuple(a.add(b) for a, b in zip(self.congruences, other.congruences)),
        )

    def negate(self) -> "ProductValue":
        return ProductValue(
            tuple(interval.negate() for interval in self.intervals),
            tuple(congruence.negate() for congruence in self.congruences),
        )

    def leq(self, other: "ProductValue") -> bool:
        return all(
            a.leq(b) for a, b in zip(self.intervals, other.intervals)
        ) and all(a.leq(b) for a, b in zip(self.congruences, other.congruences))

    def select(self, mask: BoolVector, other: "ProductValue") -> "ProductValue":
        """Per-component choice: keep ``self`` where the mask is true."""
        return ProductValue(
            tuple(
                a if keep else b
                for a, b, keep in zip(self.intervals, other.intervals, mask)
            ),
            tuple(
                a if keep else b
                for a, b, keep in zip(self.congruences, other.congruences, mask)
            ),
        )

    def contains(self, vector: IntVector) -> bool:
        return all(
            interval.contains(value)
            for interval, value in zip(self.intervals, vector)
        ) and all(
            congruence.contains(value)
            for congruence, value in zip(self.congruences, vector)
        )

    def symbolic(self, outputs: Sequence[LinearExpression]) -> Formula:
        constraints: List[Formula] = []
        for index, output in enumerate(outputs):
            constraints.append(self.intervals[index].symbolic(output))
            constraints.append(self.congruences[index].symbolic(output, tag=str(index)))
        return conjunction(constraints)

    def __str__(self) -> str:
        parts = [
            f"{interval}&{congruence}"
            for interval, congruence in zip(self.intervals, self.congruences)
        ]
        return "<" + ", ".join(parts) + ">"
