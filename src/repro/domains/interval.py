"""The interval (box) domain: per-example integer ranges with widening.

The cheapest useful abstraction of the GFA semantics: every integer-sorted
nonterminal maps to one :class:`~repro.domains.numeric.Interval` per example
(a *box*), joined and widened component-wise.  Boxes decide most
LimitedPlus/scaling instances — a Plus-budgeted grammar can only reach a
bounded band of outputs, and when the specification's demanded output falls
outside the band for some example the problem is unrealizable — and they do
so **without any ILP call**: the concretization check reduces to deciding a
one-variable QF-LIA formula per example, which
:func:`satisfiable_on_interval` does by evaluating the formula at the finite
set of threshold points of its atoms.

The truth-value analysis of comparisons between intervals
(:func:`component_truth_values`) lives here because it is interval logic;
the ``numeric`` reduced product reuses it for its interval component.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Set, Tuple

from repro.domains.base import ExampleVectorDomain, masked_ite_join
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.numeric import Interval
from repro.domains.registry import register_domain
from repro.logic.formulas import And, Atom, BoolLit, Formula, Not, Or
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult, Verdict
from repro.utils.errors import SemanticsError
from repro.utils.vectors import BoolVector, IntVector


@dataclass(frozen=True)
class Box:
    """A product of intervals, one per example component."""

    intervals: Tuple[Interval, ...]

    @staticmethod
    def bottom(dimension: int) -> "Box":
        return Box(tuple(Interval.empty() for _ in range(dimension)))

    @staticmethod
    def constant(vector: IntVector) -> "Box":
        return Box(tuple(Interval.constant(value) for value in vector))

    @property
    def dimension(self) -> int:
        return len(self.intervals)

    def is_empty(self) -> bool:
        return any(interval.is_empty() for interval in self.intervals)

    def join(self, other: "Box") -> "Box":
        return Box(tuple(a.join(b) for a, b in zip(self.intervals, other.intervals)))

    def widen(self, other: "Box") -> "Box":
        return Box(tuple(a.widen(b) for a, b in zip(self.intervals, other.intervals)))

    def add(self, other: "Box") -> "Box":
        return Box(tuple(a.add(b) for a, b in zip(self.intervals, other.intervals)))

    def leq(self, other: "Box") -> bool:
        return all(a.leq(b) for a, b in zip(self.intervals, other.intervals))

    def select(self, mask: BoolVector, other: "Box") -> "Box":
        """Per-component choice: keep ``self`` where the mask is true."""
        return Box(
            tuple(
                a if keep else b
                for a, b, keep in zip(self.intervals, other.intervals, mask)
            )
        )

    def contains(self, vector: IntVector) -> bool:
        return all(
            interval.contains(value)
            for interval, value in zip(self.intervals, vector)
        )

    def symbolic(self, outputs: Sequence[LinearExpression]) -> Formula:
        """gamma_hat as a QF-LIA formula (for interoperability; unused by
        the domain's own check, which never builds solver queries)."""
        from repro.logic.formulas import conjunction

        return conjunction(
            [
                self.intervals[index].symbolic(output)
                for index, output in enumerate(outputs)
            ]
        )

    def __str__(self) -> str:
        return "<" + ", ".join(str(interval) for interval in self.intervals) + ">"


# ---------------------------------------------------------------------------
# Interval truth-value analysis of comparisons
# ---------------------------------------------------------------------------


def component_truth_values(name: str, left: Interval, right: Interval) -> List[bool]:
    """Possible truth values of ``left <cmp> right`` from interval bounds."""

    def lower(interval: Interval) -> float:
        return float("-inf") if interval.low is None else interval.low

    def upper(interval: Interval) -> float:
        return float("inf") if interval.high is None else interval.high

    outcomes: Set[bool] = set()
    if name == "LessThan":
        if lower(left) < upper(right):
            outcomes.add(True)
        if upper(left) >= lower(right):
            outcomes.add(False)
    elif name == "LessEq":
        if lower(left) <= upper(right):
            outcomes.add(True)
        if upper(left) > lower(right):
            outcomes.add(False)
    elif name == "GreaterThan":
        if upper(left) > lower(right):
            outcomes.add(True)
        if lower(left) <= upper(right):
            outcomes.add(False)
    elif name == "GreaterEq":
        if upper(left) >= lower(right):
            outcomes.add(True)
        if lower(left) < upper(right):
            outcomes.add(False)
    else:  # Equal
        if lower(left) <= upper(right) and lower(right) <= upper(left):
            outcomes.add(True)
        if not (lower(left) == upper(left) == lower(right) == upper(right)):
            outcomes.add(False)
    return sorted(outcomes)


def interval_comparison(
    name: str,
    left_intervals: Sequence[Interval],
    right_intervals: Sequence[Interval],
    dimension: int,
) -> BoolVectorSet:
    """``<cmp>#`` over interval components: the set of reachable truth vectors."""
    per_component = [
        component_truth_values(name, left_intervals[index], right_intervals[index])
        for index in range(dimension)
    ]
    results: List[List[bool]] = [[]]
    for component in per_component:
        results = [prefix + [value] for prefix in results for value in component]
    return BoolVectorSet([BoolVector(bits) for bits in results], dimension)


# ---------------------------------------------------------------------------
# One-variable QF-LIA decision by threshold enumeration
# ---------------------------------------------------------------------------


def _collect_thresholds(
    formula: Formula, variable: str, thresholds: Set[int]
) -> bool:
    """Gather the integer threshold points of every atom mentioning ``variable``.

    Returns False when the formula mentions any *other* variable (the direct
    decision procedure then refuses, staying sound by answering "maybe
    satisfiable").
    """
    if isinstance(formula, BoolLit):
        return True
    if isinstance(formula, Atom):
        coefficients = dict(formula.expression.items)
        coefficient = coefficients.pop(variable, 0)
        if coefficients:
            return False
        if coefficient != 0:
            boundary = Fraction(-formula.expression.constant, coefficient)
            thresholds.add(math.floor(boundary))
            thresholds.add(math.ceil(boundary))
        return True
    if isinstance(formula, Not):
        return _collect_thresholds(formula.operand, variable, thresholds)
    if isinstance(formula, (And, Or)):
        return all(
            _collect_thresholds(operand, variable, thresholds)
            for operand in formula.operands
        )
    return False


def satisfiable_on_interval(
    formula: Formula, variable: str, interval: Interval
) -> bool:
    """Decide ``exists v in interval. formula[variable := v]`` without a solver.

    A one-variable QF-LIA formula is piecewise-constant between the
    thresholds of its atoms (``a*v + b <cmp> 0`` changes truth value only
    around ``-b/a``), so evaluating it at every threshold, the points one
    off either side, the interval endpoints, and one representative beyond
    the extreme thresholds decides satisfiability exactly.

    Over-approximates (returns True) when the formula mentions variables
    other than ``variable`` — the caller then reports ``UNKNOWN`` rather
    than risking an unsound refutation.
    """
    if interval.is_empty():
        return False
    thresholds: Set[int] = set()
    if not _collect_thresholds(formula, variable, thresholds):
        return True  # not a one-variable formula; cannot refute directly
    candidates: Set[int] = set()

    def consider(value: int) -> None:
        if interval.contains(value):
            candidates.add(value)

    for threshold in thresholds:
        for delta in (-1, 0, 1):
            consider(threshold + delta)
    if interval.low is not None:
        consider(interval.low)
    if interval.high is not None:
        consider(interval.high)
    ordered = sorted(thresholds)
    if interval.low is None:
        consider((ordered[0] - 2) if ordered else (interval.high or 0))
    if interval.high is None:
        consider((ordered[-1] + 2) if ordered else (interval.low or 0))
    if not candidates:
        # A non-empty finite interval strictly between two thresholds: any
        # point of the interval is representative.
        assert interval.low is not None
        candidates.add(interval.low)
    return any(formula.evaluate({variable: value}) for value in candidates)


# ---------------------------------------------------------------------------
# The domain
# ---------------------------------------------------------------------------


@register_domain("interval")
class IntervalDomain(ExampleVectorDomain):
    """Per-example integer boxes with standard interval widening.

    Sound and deliberately coarse: the fixpoint usually converges in a
    handful of iterations and the check is solver-free, which makes this
    the first stage of the staged portfolio — LimitedPlus/scaling instances
    whose output band excludes a demanded output are dispatched in
    microseconds, everything else escalates.
    """

    def int_bottom(self, dimension: int) -> Box:
        return Box.bottom(dimension)

    def int_join(self, left: Box, right: Box) -> Box:
        return left.join(right)

    def int_widen(self, previous: Box, current: Box) -> Box:
        return previous.widen(current)

    def int_equal(self, left: Box, right: Box) -> bool:
        return left.leq(right) and right.leq(left)

    def from_vector(self, vector: IntVector) -> Box:
        return Box.constant(vector)

    def int_add(self, left: Box, right: Box) -> Box:
        return left.add(right)

    def ite(
        self,
        guards: BoolVectorSet,
        then_value: Box,
        else_value: Box,
        dimension: int,
    ) -> Box:
        return masked_ite_join(
            guards,
            lambda guard: then_value.select(guard, else_value),
            Box.bottom(dimension),
            lambda left, right: left.join(right),
        )

    def compare(
        self, name: str, left: Box, right: Box, dimension: int
    ) -> BoolVectorSet:
        if left.is_empty() or right.is_empty():
            return BoolVectorSet.empty(dimension)
        return interval_comparison(name, left.intervals, right.intervals, dimension)

    def check(
        self, start_value: Box, spec: Specification, examples: ExampleSet
    ) -> CheckResult:
        """Per-example refutation: the box factorizes, so ``P`` of Thm. 4.5
        is satisfiable iff each example's one-variable instance is."""
        if not isinstance(start_value, Box):
            raise SemanticsError("the start nonterminal must be integer-sorted")
        if start_value.is_empty():
            return CheckResult(
                verdict=Verdict.UNREALIZABLE,
                examples=examples,
                details={"reason": "start symbol derives no terms on these examples"},
            )
        output = LinearExpression.variable("__interval_out")
        for index, example in enumerate(examples):
            instance = spec.instantiate(example, output)
            if not satisfiable_on_interval(
                instance, "__interval_out", start_value.intervals[index]
            ):
                return CheckResult(
                    verdict=Verdict.UNREALIZABLE,
                    examples=examples,
                    details={
                        "reason": "interval refutation",
                        "example_index": index,
                        "interval": str(start_value.intervals[index]),
                    },
                )
        return CheckResult(
            verdict=Verdict.UNKNOWN,
            examples=examples,
            details={"box": str(start_value)},
        )
