"""The interval (box) domain: per-example integer ranges with widening.

The cheapest useful abstraction of the GFA semantics: every integer-sorted
nonterminal maps to one :class:`~repro.domains.numeric.Interval` per example
(a *box*), joined and widened component-wise.  Boxes decide most
LimitedPlus/scaling instances — a Plus-budgeted grammar can only reach a
bounded band of outputs, and when the specification's demanded output falls
outside the band for some example the problem is unrealizable — and they do
so **without any ILP call**: the concretization check reduces to deciding a
one-variable QF-LIA formula per example, which
:func:`satisfiable_on_interval` does by evaluating the formula at the finite
set of threshold points of its atoms.

A :class:`Box` is stored struct-of-arrays: one column of lower bounds and
one of upper bounds (±inf encodes an unbounded end, an empty component is
normalised to ``(+inf, -inf)`` so that the column ``min``/``max`` sweeps of
``join`` are correct without per-component branching).  The columns are
owned by the :mod:`repro.utils.columns` backend the box was built under —
whole-box ``join``/``widen``/``add``/``leq``/``select``/``contains`` are
single sweeps, and the per-component :class:`Interval` tuple is materialised
only on demand (``.intervals``, pickling, printing).  Bounds beyond the
numpy backend's exact float64 integer range fall back to the pure-Python
ops, so results are bit-identical across backends.

The truth-value analysis of comparisons between intervals
(:func:`component_truth_values`) lives here because it is interval logic;
the ``numeric`` reduced product reuses it for its interval component.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import List, Optional, Sequence, Set, Tuple

from repro.domains.base import ExampleVectorDomain, masked_ite_join
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.numeric import Congruence, Interval
from repro.domains.registry import register_domain
from repro.logic.formulas import And, Atom, BoolLit, Comparison, Formula, Not, Or
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult, Verdict
from repro.utils.columns import (
    NEG_INF,
    POS_INF,
    PYTHON_OPS,
    Bound,
    ColumnOps,
    ColumnOverflowError,
    active_ops,
)
from repro.utils.errors import SemanticsError
from repro.utils.vectors import BoolVector, IntVector


def _interval_bounds(
    intervals: Sequence[Interval],
) -> Tuple[Tuple[Bound, ...], Tuple[Bound, ...]]:
    """Canonical bound tuples, empties normalised to ``(+inf, -inf)``."""
    lo: List[Bound] = []
    hi: List[Bound] = []
    for interval in intervals:
        if interval.is_empty():
            lo.append(POS_INF)
            hi.append(NEG_INF)
        else:
            lo.append(NEG_INF if interval.low is None else interval.low)
            hi.append(POS_INF if interval.high is None else interval.high)
    return tuple(lo), tuple(hi)


def _bounds_interval(low: Bound, high: Bound) -> Interval:
    if low > high:
        return Interval.empty()
    return Interval(
        None if low == NEG_INF else int(low),
        None if high == POS_INF else int(high),
    )


class Box:
    """A product of intervals, one per example component (struct-of-arrays)."""

    __slots__ = ("_lo", "_hi", "_ops", "_dimension", "_intervals", "__weakref__")

    def __init__(self, intervals: Sequence[Interval]):
        intervals = tuple(intervals)
        lo, hi = _interval_bounds(intervals)
        ops = active_ops()
        try:
            self._lo = ops.bound_column(lo)
            self._hi = ops.bound_column(hi)
        except ColumnOverflowError:
            ops = PYTHON_OPS
            self._lo = lo
            self._hi = hi
        self._ops = ops
        self._dimension = len(intervals)
        self._intervals = intervals

    @classmethod
    def _from_columns(cls, lo, hi, ops: ColumnOps, dimension: int) -> "Box":
        box = object.__new__(cls)
        box._lo = lo
        box._hi = hi
        box._ops = ops
        box._dimension = dimension
        box._intervals = None
        return box

    @staticmethod
    def bottom(dimension: int) -> "Box":
        ops = active_ops()
        return Box._from_columns(
            ops.bound_column((POS_INF,) * dimension),
            ops.bound_column((NEG_INF,) * dimension),
            ops,
            dimension,
        )

    @staticmethod
    def constant(vector: IntVector) -> "Box":
        bounds = tuple(vector.values)
        ops = active_ops()
        try:
            lo = ops.bound_column(bounds)
            hi = ops.bound_column(bounds)
        except ColumnOverflowError:
            ops = PYTHON_OPS
            lo = hi = bounds
        return Box._from_columns(lo, hi, ops, len(bounds))

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        """The per-component intervals (materialised once, on demand)."""
        if self._intervals is None:
            lo = self._ops.bound_tuple(self._lo)
            hi = self._ops.bound_tuple(self._hi)
            self._intervals = tuple(map(_bounds_interval, lo, hi))
        return self._intervals

    def _aligned(self, other: "Box"):
        """Both boxes' columns under one ops (mixed backends meet on python)."""
        if self._ops is other._ops:
            return self._ops, self._lo, self._hi, other._lo, other._hi
        a_lo, a_hi = _interval_bounds(self.intervals)
        b_lo, b_hi = _interval_bounds(other.intervals)
        return PYTHON_OPS, a_lo, a_hi, b_lo, b_hi

    def is_empty(self) -> bool:
        return self._ops.iv_any_empty(self._lo, self._hi)

    def join(self, other: "Box") -> "Box":
        ops, a_lo, a_hi, b_lo, b_hi = self._aligned(other)
        lo, hi = ops.iv_join(a_lo, a_hi, b_lo, b_hi)
        return Box._from_columns(lo, hi, ops, self._dimension)

    def widen(self, other: "Box") -> "Box":
        ops, a_lo, a_hi, b_lo, b_hi = self._aligned(other)
        lo, hi = ops.iv_widen(a_lo, a_hi, b_lo, b_hi)
        return Box._from_columns(lo, hi, ops, self._dimension)

    def add(self, other: "Box") -> "Box":
        ops, a_lo, a_hi, b_lo, b_hi = self._aligned(other)
        lo, hi = ops.iv_add(a_lo, a_hi, b_lo, b_hi)
        return Box._from_columns(lo, hi, ops, self._dimension)

    def leq(self, other: "Box") -> bool:
        ops, a_lo, a_hi, b_lo, b_hi = self._aligned(other)
        return ops.iv_leq(a_lo, a_hi, b_lo, b_hi)

    def select(self, mask: BoolVector, other: "Box") -> "Box":
        """Per-component choice: keep ``self`` where the mask is true."""
        ops, a_lo, a_hi, b_lo, b_hi = self._aligned(other)
        keep = mask.column(ops) if ops is not PYTHON_OPS else mask.values
        lo, hi = ops.iv_select(keep, a_lo, a_hi, b_lo, b_hi)
        return Box._from_columns(lo, hi, ops, self._dimension)

    def contains(self, vector: IntVector) -> bool:
        ops = self._ops
        try:
            values = ops.bound_column(vector.values)
        except ColumnOverflowError:
            ops = PYTHON_OPS
            lo, hi = _interval_bounds(self.intervals)
            return ops.iv_contains(lo, hi, vector.values)
        return ops.iv_contains(self._lo, self._hi, values)

    def symbolic(self, outputs: Sequence[LinearExpression]) -> Formula:
        """gamma_hat as a QF-LIA formula (for interoperability; unused by
        the domain's own check, which never builds solver queries)."""
        from repro.logic.formulas import conjunction

        return conjunction(
            [
                self.intervals[index].symbolic(output)
                for index, output in enumerate(outputs)
            ]
        )

    def __reduce__(self):
        return (Box, (self.intervals,))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Box) and self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(("Box", self.intervals))

    def __str__(self) -> str:
        return "<" + ", ".join(str(interval) for interval in self.intervals) + ">"

    def __repr__(self) -> str:
        return f"Box(intervals={self.intervals!r})"


# ---------------------------------------------------------------------------
# Interval truth-value analysis of comparisons
# ---------------------------------------------------------------------------


def component_truth_values(name: str, left: Interval, right: Interval) -> List[bool]:
    """Possible truth values of ``left <cmp> right`` from interval bounds."""
    (a_lo,), (a_hi,) = _interval_bounds([left])
    (b_lo,), (b_hi,) = _interval_bounds([right])
    can_true, can_false = PYTHON_OPS.iv_compare_masks(
        name, (a_lo,), (a_hi,), (b_lo,), (b_hi,)
    )
    outcomes: Set[bool] = set()
    if can_true[0]:
        outcomes.add(True)
    if can_false[0]:
        outcomes.add(False)
    return sorted(outcomes)


def _truth_vectors_from_masks(
    can_true: Sequence[bool], can_false: Sequence[bool], dimension: int
) -> BoolVectorSet:
    """Cartesian product of per-component outcomes, as packed bit patterns."""
    packed: List[int] = [0]
    for index in range(dimension):
        bit = 1 << index
        if can_true[index] and can_false[index]:
            packed.extend([bits | bit for bits in packed])
        elif can_true[index]:
            packed = [bits | bit for bits in packed]
        elif not can_false[index]:
            return BoolVectorSet.empty(dimension)
    return BoolVectorSet(
        [BoolVector.from_packed(bits, dimension) for bits in packed], dimension
    )


def interval_comparison(
    name: str,
    left_intervals: Sequence[Interval],
    right_intervals: Sequence[Interval],
    dimension: int,
) -> BoolVectorSet:
    """``<cmp>#`` over interval components: the set of reachable truth vectors."""
    a_lo, a_hi = _interval_bounds(left_intervals)
    b_lo, b_hi = _interval_bounds(right_intervals)
    can_true, can_false = PYTHON_OPS.iv_compare_masks(name, a_lo, a_hi, b_lo, b_hi)
    return _truth_vectors_from_masks(can_true, can_false, dimension)


def _box_comparison(name: str, left: Box, right: Box, dimension: int) -> BoolVectorSet:
    """The whole-box comparison: both masks in one column sweep each."""
    ops, a_lo, a_hi, b_lo, b_hi = left._aligned(right)
    can_true, can_false = ops.iv_compare_masks(name, a_lo, a_hi, b_lo, b_hi)
    return _truth_vectors_from_masks(
        ops.bool_tuple(can_true), ops.bool_tuple(can_false), dimension
    )


# ---------------------------------------------------------------------------
# One-variable QF-LIA decision by threshold enumeration
# ---------------------------------------------------------------------------


def _collect_thresholds(
    formula: Formula, variable: str, thresholds: Set[int]
) -> bool:
    """Gather the integer threshold points of every atom mentioning ``variable``.

    Returns False when the formula mentions any *other* variable (the direct
    decision procedure then refuses, staying sound by answering "maybe
    satisfiable").
    """
    if isinstance(formula, BoolLit):
        return True
    if isinstance(formula, Atom):
        coefficients = dict(formula.expression.items)
        coefficient = coefficients.pop(variable, 0)
        if coefficients:
            return False
        if coefficient != 0:
            boundary = Fraction(-formula.expression.constant, coefficient)
            thresholds.add(math.floor(boundary))
            thresholds.add(math.ceil(boundary))
        return True
    if isinstance(formula, Not):
        return _collect_thresholds(formula.operand, variable, thresholds)
    if isinstance(formula, (And, Or)):
        return all(
            _collect_thresholds(operand, variable, thresholds)
            for operand in formula.operands
        )
    return False


def _evaluate_on_candidates(
    formula: Formula, variable: str, values: IntVector
) -> BoolVector:
    """Evaluate a one-variable formula on every candidate point at once.

    One traversal of the formula computes a truth vector over all candidate
    values through the columnar vector ops — instead of one full traversal
    per candidate via ``formula.evaluate``.  Callers must have established
    (via :func:`_collect_thresholds`) that ``variable`` is the only variable.
    """
    dimension = len(values)
    if isinstance(formula, BoolLit):
        return BoolVector.constant(formula.value, dimension)
    if isinstance(formula, Atom):
        coefficient = dict(formula.expression.items).get(variable, 0)
        column = values.scale(coefficient) + IntVector.constant(
            formula.expression.constant, dimension
        )
        zero = IntVector.zero(dimension)
        if formula.comparison == Comparison.LE:
            return ~zero.less_than(column)
        if formula.comparison == Comparison.LT:
            return column.less_than(zero)
        if formula.comparison == Comparison.EQ:
            return column.equal_to(zero)
        return ~column.equal_to(zero)
    if isinstance(formula, Not):
        return ~_evaluate_on_candidates(formula.operand, variable, values)
    if isinstance(formula, (And, Or)):
        operands = [
            _evaluate_on_candidates(operand, variable, values)
            for operand in formula.operands
        ]
        result = operands[0]
        if isinstance(formula, And):
            for operand in operands[1:]:
                result = result & operand
        else:
            for operand in operands[1:]:
                result = result | operand
        return result
    raise SemanticsError(f"cannot evaluate formula node {type(formula).__name__}")


def satisfiable_on_interval(
    formula: Formula, variable: str, interval: Interval
) -> bool:
    """Decide ``exists v in interval. formula[variable := v]`` without a solver.

    A one-variable QF-LIA formula is piecewise-constant between the
    thresholds of its atoms (``a*v + b <cmp> 0`` changes truth value only
    around ``-b/a``), so evaluating it at every threshold, the points one
    off either side, the interval endpoints, and one representative beyond
    the extreme thresholds decides satisfiability exactly.  All candidate
    points are evaluated in one batched sweep.

    Over-approximates (returns True) when the formula mentions variables
    other than ``variable`` — the caller then reports ``UNKNOWN`` rather
    than risking an unsound refutation.
    """
    if interval.is_empty():
        return False
    thresholds: Set[int] = set()
    if not _collect_thresholds(formula, variable, thresholds):
        return True  # not a one-variable formula; cannot refute directly
    candidates: Set[int] = set()

    def consider(value: int) -> None:
        if interval.contains(value):
            candidates.add(value)

    for threshold in thresholds:
        for delta in (-1, 0, 1):
            consider(threshold + delta)
    if interval.low is not None:
        consider(interval.low)
    if interval.high is not None:
        consider(interval.high)
    ordered = sorted(thresholds)
    if interval.low is None:
        consider((ordered[0] - 2) if ordered else (interval.high or 0))
    if interval.high is None:
        consider((ordered[-1] + 2) if ordered else (interval.low or 0))
    if not candidates:
        # A non-empty finite interval strictly between two thresholds: any
        # point of the interval is representative.
        assert interval.low is not None
        candidates.add(interval.low)
    outcomes = _evaluate_on_candidates(
        formula, variable, IntVector(sorted(candidates))
    )
    return any(outcomes.values)


def satisfiable_on_interval_congruence(
    formula: Formula, variable: str, interval: Interval, congruence: Congruence
) -> bool:
    """Decide ``exists v in interval ∩ congruence. formula[variable := v]``.

    Same threshold-enumeration idea as :func:`satisfiable_on_interval`, but
    every candidate point is *snapped* onto the congruence class ``r + mZ``
    in both directions.  A one-variable formula is constant on the open gaps
    strictly between consecutive thresholds and at each threshold point, so
    for every piece that meets ``interval ∩ congruence`` its least (or
    greatest) congruent element is among the snapped candidates: piece ends
    are thresholds, thresholds ± 1, or the interval endpoints, and all of
    those are snapped both up and down.  Over-approximates (returns True)
    when other variables appear.
    """
    if interval.is_empty() or congruence.is_empty():
        return False
    if congruence.modulus == 1:
        return satisfiable_on_interval(formula, variable, interval)
    thresholds: Set[int] = set()
    if not _collect_thresholds(formula, variable, thresholds):
        return True  # not a one-variable formula; cannot refute directly
    if congruence.modulus == 0:
        point = congruence.remainder
        if not interval.contains(point):
            return False
        outcome = _evaluate_on_candidates(formula, variable, IntVector((point,)))
        return bool(outcome.values[0])
    modulus = congruence.modulus
    remainder = congruence.remainder

    def snap_up(value: int) -> int:
        return value + ((remainder - value) % modulus)

    def snap_down(value: int) -> int:
        return value - ((value - remainder) % modulus)

    candidates: Set[int] = set()

    def consider(value: int) -> None:
        if interval.contains(value) and congruence.contains(value):
            candidates.add(value)

    for threshold in thresholds:
        for delta in (-1, 0, 1):
            consider(snap_up(threshold + delta))
            consider(snap_down(threshold + delta))
    if interval.low is not None:
        consider(snap_up(interval.low))
    if interval.high is not None:
        consider(snap_down(interval.high))
    if interval.low is None and interval.high is None and not thresholds:
        consider(remainder)
    # Every piece meeting interval ∩ congruence contributed a candidate, so
    # an empty candidate set means the intersection itself is empty.
    if not candidates:
        return False
    outcomes = _evaluate_on_candidates(
        formula, variable, IntVector(sorted(candidates))
    )
    return any(outcomes.values)


# ---------------------------------------------------------------------------
# The domain
# ---------------------------------------------------------------------------


@register_domain("interval")
class IntervalDomain(ExampleVectorDomain):
    """Per-example integer boxes with standard interval widening.

    Sound and deliberately coarse: the fixpoint usually converges in a
    handful of iterations and the check is solver-free, which makes this
    the first stage of the staged portfolio — LimitedPlus/scaling instances
    whose output band excludes a demanded output are dispatched in
    microseconds, everything else escalates.
    """

    def int_bottom(self, dimension: int) -> Box:
        return Box.bottom(dimension)

    def int_join(self, left: Box, right: Box) -> Box:
        return left.join(right)

    def int_widen(self, previous: Box, current: Box) -> Box:
        return previous.widen(current)

    def int_equal(self, left: Box, right: Box) -> bool:
        return left.leq(right) and right.leq(left)

    def from_vector(self, vector: IntVector) -> Box:
        return Box.constant(vector)

    def int_add(self, left: Box, right: Box) -> Box:
        return left.add(right)

    def ite(
        self,
        guards: BoolVectorSet,
        then_value: Box,
        else_value: Box,
        dimension: int,
    ) -> Box:
        return masked_ite_join(
            guards,
            lambda guard: then_value.select(guard, else_value),
            Box.bottom(dimension),
            lambda left, right: left.join(right),
        )

    def compare(
        self, name: str, left: Box, right: Box, dimension: int
    ) -> BoolVectorSet:
        if left.is_empty() or right.is_empty():
            return BoolVectorSet.empty(dimension)
        return _box_comparison(name, left, right, dimension)

    def check(
        self, start_value: Box, spec: Specification, examples: ExampleSet
    ) -> CheckResult:
        """Per-example refutation: the box factorizes, so ``P`` of Thm. 4.5
        is satisfiable iff each example's one-variable instance is."""
        if not isinstance(start_value, Box):
            raise SemanticsError("the start nonterminal must be integer-sorted")
        if start_value.is_empty():
            return CheckResult(
                verdict=Verdict.UNREALIZABLE,
                examples=examples,
                details={"reason": "start symbol derives no terms on these examples"},
            )
        output = LinearExpression.variable("__interval_out")
        intervals = start_value.intervals
        for index, example in enumerate(examples):
            instance = spec.instantiate(example, output)
            if not satisfiable_on_interval(
                instance, "__interval_out", intervals[index]
            ):
                return CheckResult(
                    verdict=Verdict.UNREALIZABLE,
                    examples=examples,
                    details={
                        "reason": "interval refutation",
                        "example_index": index,
                        "interval": str(intervals[index]),
                    },
                )
        return CheckResult(
            verdict=Verdict.UNKNOWN,
            examples=examples,
            details={"box": str(start_value)},
        )
