"""The numeric reduced-product domain (intervals x congruences).

This is the abstraction the repo has always used for the NayHorn/NOPE
Spacer substitutes (see DESIGN.md): integer-sorted nonterminals map to a
:class:`~repro.domains.numeric.ProductValue` — one interval and one
congruence per example component — and the concretization check of Alg. 1
goes through the symbolic route (``gamma_hat`` as a QF-LIA formula handed to
the DPLL(T) core).  Historically the transfer functions lived inline in
:mod:`repro.unreal.approximate`; they now live here behind the
:class:`~repro.domains.base.AbstractDomain` seam, registered as
``"numeric"`` (the default domain of ``check_examples_abstract``, so
``nayHorn``/``nope`` behavior is unchanged).
"""

from __future__ import annotations

from repro.domains.base import ExampleVectorDomain, masked_ite_join
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.interval import interval_comparison
from repro.domains.numeric import ProductValue
from repro.domains.registry import register_domain
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult
from repro.utils.errors import SemanticsError
from repro.utils.vectors import IntVector


@register_domain("numeric")
class NumericProductDomain(ExampleVectorDomain):
    """Reduced product of intervals and congruences per example component.

    The congruence half captures the "every term is a multiple of ``3x``"
    invariants of the paper's running example; the interval half powers the
    comparison analysis.  Sound but not exact (Thm. 4.5(1)): the check can
    answer ``UNREALIZABLE`` or ``UNKNOWN``, never ``REALIZABLE``.
    """

    def int_bottom(self, dimension: int) -> ProductValue:
        return ProductValue.bottom(dimension)

    def int_join(self, left: ProductValue, right: ProductValue) -> ProductValue:
        return left.join(right)

    def int_widen(self, previous: ProductValue, current: ProductValue) -> ProductValue:
        return previous.widen(current)

    def int_equal(self, left: ProductValue, right: ProductValue) -> bool:
        return left.leq(right) and right.leq(left)

    def from_vector(self, vector: IntVector) -> ProductValue:
        return ProductValue.constant(vector)

    def int_add(self, left: ProductValue, right: ProductValue) -> ProductValue:
        return left.add(right)

    def ite(
        self,
        guards: BoolVectorSet,
        then_value: ProductValue,
        else_value: ProductValue,
        dimension: int,
    ) -> ProductValue:
        assert isinstance(then_value, ProductValue)
        assert isinstance(else_value, ProductValue)
        return masked_ite_join(
            guards,
            lambda guard: then_value.select(guard, else_value),
            ProductValue.bottom(dimension),
            lambda left, right: left.join(right),
        )

    def compare(
        self, name: str, left: ProductValue, right: ProductValue, dimension: int
    ) -> BoolVectorSet:
        if left.is_empty() or right.is_empty():
            return BoolVectorSet.empty(dimension)
        return interval_comparison(name, left.intervals, right.intervals, dimension)

    def check(
        self, start_value: ProductValue, spec: Specification, examples: ExampleSet
    ) -> CheckResult:
        """The symbolic route: ``gamma_hat(start) AND psi`` to the QF-LIA core."""
        from repro.unreal.check import check_unrealizable

        if not isinstance(start_value, ProductValue):
            raise SemanticsError("the start nonterminal must be integer-sorted")
        return check_unrealizable(start_value, spec, examples, exact=False)
