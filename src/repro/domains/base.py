"""The ``AbstractDomain`` protocol: pluggable abstractions for the GFA solver.

The paper's approximate method (§4.3) is a *recipe*, not a fixed algorithm:
pick any over-approximating abstract domain, solve the grammar-flow-analysis
equations by chaotic iteration (with widening when the domain has infinite
ascending chains), and run Alg. 1's final check against the examples.  The
result is sound for any such domain — ``UNREALIZABLE`` answers are always
trustworthy — and two-sided exactly when the domain is exact.

Historically the repo hard-wired one instantiation (the reduced product of
intervals and congruences) into :mod:`repro.unreal.approximate`.  This module
extracts the seam: :class:`AbstractDomain` names the operations the generic
solver needs (lattice ops, a transfer function per grammar production, and a
concretization check against the examples), and
:mod:`repro.domains.registry` resolves implementations by name, mirroring the
engine registry.  The built-in domains are:

========== ======================================== =======================
name       integer abstraction                      check
========== ======================================== =======================
numeric    intervals x congruences (reduced product) symbolic, via QF-LIA
interval   per-example integer boxes                 direct, no ILP calls
powerset   finite sets of output vectors (capped)    direct, two-sided
product    reduced product of any two domains        component-wise
========== ======================================== =======================

Runnable example — a LimitedPlus-style problem (the grammar derives at most
``x + 1`` but the spec demands ``x + 5``) refuted by the pure interval
domain without a single ILP call:

    >>> from repro import parse_sygus, ExampleSet
    >>> from repro.unreal.approximate import check_examples_abstract
    >>> problem = parse_sygus('''
    ...   (set-logic LIA)
    ...   (synth-fun f ((x Int)) Int ((Start Int (x 1 (+ x 1)))))
    ...   (declare-var x Int)
    ...   (constraint (= (f x) (+ x 5)))
    ...   (check-synth)''', name="plus-budget")
    >>> result = check_examples_abstract(
    ...     problem, ExampleSet.of({"x": 0}), domain="interval")
    >>> result.verdict.value
    'unrealizable'

(On ``x = 0`` every derivable term lies in ``[0, 1]`` while the spec demands
``f(0) = 5``.  The running example of §1/§2 — every term a multiple of
``3x`` — needs the congruence component of the default ``numeric`` domain
instead: boxes cannot see residue classes.  Domains are complementary, which
is what the staged portfolio exploits.)
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

from repro.domains.boolvectors import BoolVectorSet
from repro.grammar.alphabet import Sort
from repro.grammar.rtg import Production
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult
from repro.utils.errors import SemanticsError
from repro.utils.vectors import BoolVector, IntVector


class AbstractDomain(ABC):
    """One over-approximating abstraction of the GFA semantics (§4.3).

    A domain supplies values for every nonterminal sort, the lattice
    operations the fixpoint driver needs, a transfer function per grammar
    production, and the final concretization check of Alg. 1.  Soundness
    contract: every operation must *over-approximate* the concrete vector
    semantics of :mod:`repro.semantics.evaluator` — the generic solver then
    guarantees that an ``UNREALIZABLE`` verdict from :meth:`check` is
    correct (Thm. 4.5(1)).  A domain may only return ``REALIZABLE`` when its
    abstraction was exact for the whole solve (Thm. 4.5(2)).

    Instances may carry per-check state (e.g. an exactness flag), so
    consumers create a fresh domain per check via
    :func:`repro.domains.registry.resolve_domain`.
    """

    #: Set by :func:`repro.domains.registry.register_domain`.
    registry_name: str = ""

    @property
    def name(self) -> str:
        """The registry/display name of the domain."""
        return self.registry_name or type(self).__name__

    # -- lattice --------------------------------------------------------------

    @abstractmethod
    def bottom(self, sort: Sort, dimension: int) -> object:
        """The least value for a nonterminal of ``sort`` over ``dimension`` examples."""

    @abstractmethod
    def join(self, left: object, right: object) -> object:
        """Least upper bound of two values of the same sort."""

    def widen(self, previous: object, current: object) -> object:
        """Widening ``previous (widen) current``; defaults to plain join.

        Domains with infinite ascending chains (intervals) must override
        this for the fixpoint iteration to terminate; finite-chain domains
        (Boolean vector sets, capped powersets, congruences) can keep the
        join default.
        """
        return self.join(previous, current)

    @abstractmethod
    def equal(self, left: object, right: object) -> bool:
        """Semantic equality, used by the fixpoint driver to detect convergence."""

    # -- semantics ------------------------------------------------------------

    @abstractmethod
    def transfer(
        self,
        production: Production,
        args: Sequence[object],
        examples: ExampleSet,
    ) -> object:
        """The abstract transformer of one grammar production.

        ``args`` holds the current abstract values of the production's
        argument nonterminals, in order.  Must over-approximate applying the
        production's operator to any combination of concrete vectors drawn
        from the concretizations of ``args``.
        """

    def pre_check(self, examples: ExampleSet) -> "CheckResult | None":
        """A chance to bail out before the fixpoint solve (default: never).

        Domains whose cost explodes with the example count (the powerset
        domain enumerates up to ``2^|E|`` Boolean vectors) return an
        ``UNKNOWN`` :class:`~repro.unreal.result.CheckResult` here instead
        of attempting a hopeless solve.
        """
        del examples
        return None

    @abstractmethod
    def check(
        self, start_value: object, spec: Specification, examples: ExampleSet
    ) -> CheckResult:
        """Alg. 1 lines 3-5: decide the verdict from the start symbol's value.

        Must return ``UNREALIZABLE`` only when no concrete output vector in
        the concretization of ``start_value`` satisfies the specification on
        every example, and ``REALIZABLE`` only when the abstraction is exact
        and some vector does.
        """


class ExampleVectorDomain(AbstractDomain):
    """Shared scaffolding for domains over per-example value vectors.

    Every built-in domain abstracts the same concrete object — the vector of
    a term's outputs across the example set (§6.1) — and they all use the
    exact, finite Boolean-vector-set domain for Boolean-sorted nonterminals.
    This base class implements the sort dispatch and the per-production
    transfer once; subclasses only provide the integer-sorted hooks:

    * :meth:`int_bottom`, :meth:`int_join`, :meth:`int_widen`,
      :meth:`int_equal` — the integer lattice;
    * :meth:`from_vector` — abstraction of a single concrete vector
      (``Num``/``Var``/``NegVar`` leaves);
    * :meth:`int_add` — the ``Plus#`` transformer;
    * :meth:`ite` — the ``IfThenElse#`` transformer (guard vectors are exact);
    * :meth:`compare` — comparison operators, producing the set of Boolean
      truth-value vectors the comparison can take.
    """

    # -- integer-sort hooks ----------------------------------------------------

    @abstractmethod
    def int_bottom(self, dimension: int) -> object: ...

    @abstractmethod
    def int_join(self, left: object, right: object) -> object: ...

    def int_widen(self, previous: object, current: object) -> object:
        return self.int_join(previous, current)

    @abstractmethod
    def int_equal(self, left: object, right: object) -> bool: ...

    @abstractmethod
    def from_vector(self, vector: IntVector) -> object: ...

    @abstractmethod
    def int_add(self, left: object, right: object) -> object: ...

    @abstractmethod
    def ite(
        self,
        guards: BoolVectorSet,
        then_value: object,
        else_value: object,
        dimension: int,
    ) -> object: ...

    @abstractmethod
    def compare(
        self, name: str, left: object, right: object, dimension: int
    ) -> BoolVectorSet: ...

    # -- sort dispatch ---------------------------------------------------------

    def bottom(self, sort: Sort, dimension: int) -> object:
        if sort == Sort.BOOL:
            return BoolVectorSet.empty(dimension)
        return self.int_bottom(dimension)

    def join(self, left: object, right: object) -> object:
        if isinstance(left, BoolVectorSet) and isinstance(right, BoolVectorSet):
            return left.combine(right)
        if isinstance(left, BoolVectorSet) or isinstance(right, BoolVectorSet):
            raise SemanticsError("cannot join values of different sorts")
        return self.int_join(left, right)

    def widen(self, previous: object, current: object) -> object:
        if isinstance(previous, BoolVectorSet):
            return self.join(previous, current)
        return self.int_widen(previous, current)

    def equal(self, left: object, right: object) -> bool:
        if isinstance(left, BoolVectorSet):
            return left == right
        return self.int_equal(left, right)

    # -- the per-production transfer ------------------------------------------

    def transfer(
        self,
        production: Production,
        args: Sequence[object],
        examples: ExampleSet,
    ) -> object:
        name = production.symbol.name
        payload = production.symbol.payload
        dimension = len(examples)

        if name == "Num":
            return self.from_vector(IntVector.constant(int(payload), dimension))
        if name == "Var":
            return self.from_vector(examples.projection(str(payload)))
        if name == "NegVar":
            return self.from_vector(-examples.projection(str(payload)))
        if name == "BoolConst":
            return BoolVectorSet.singleton(
                BoolVector.constant(bool(payload), dimension)
            )
        if name == "Pass":
            return args[0]
        if name == "Plus":
            result = args[0]
            for arg in args[1:]:
                result = self.int_add(result, arg)
            return result
        if name == "IfThenElse":
            guards, then_value, else_value = args
            assert isinstance(guards, BoolVectorSet)
            return self.ite(guards, then_value, else_value, dimension)
        if name == "And":
            return args[0].conjoin(args[1])  # type: ignore[union-attr]
        if name == "Or":
            return args[0].disjoin(args[1])  # type: ignore[union-attr]
        if name == "Not":
            return args[0].negate()  # type: ignore[union-attr]
        if name in ("LessThan", "LessEq", "GreaterThan", "GreaterEq", "Equal"):
            left, right = args
            return self.compare(name, left, right, dimension)
        raise SemanticsError(f"no abstract transformer for operator {name}")


def masked_ite_join(
    guards: BoolVectorSet,
    select: "callable",
    bottom: object,
    join: "callable",
) -> object:
    """The generic ``IfThenElse#`` shape: join ``select(guard)`` over all guards.

    Domains whose values support a per-component ``select(mask)`` (boxes,
    interval-congruence products) share this loop; the powerset domain
    enumerates concrete triples instead.
    """
    result = bottom
    for guard in guards:
        result = join(result, select(guard))
    return result
