"""The example-powerset domain: finite sets of concrete output vectors.

For small example sets the concrete vector semantics of §6.1 is almost
tractable by brute force: an integer-sorted nonterminal's abstraction is the
*set of output vectors* its derivable terms produce on the examples, a
Boolean-sorted nonterminal's is the usual Boolean-vector set.  Because
grammar productions combine independently-derived subterms, applying an
operator to every combination of argument vectors is an **exact** transfer —
so as long as every set stays below the size cap, the domain computes the
precise reachable set and the concretization check is two-sided: no vector
satisfies the spec on all examples ⇒ ``UNREALIZABLE``; some vector does ⇒
``REALIZABLE`` (on these examples, the same one-sided-to-two-sided contract
as the exact engines).

Grammars with unbounded arithmetic (``Plus(Start, Start)``) produce
infinitely many vectors; the cap is the widening: a set that outgrows it
jumps to ``TOP``, the domain records that it lost exactness, and the check
degrades to sound-``UNREALIZABLE``-only (and ``UNKNOWN`` when ``TOP``
reaches the start symbol).  LimitedConst/LimitedIf instances whose witness
behavior fits under the cap are decided exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Tuple

from repro.domains.base import ExampleVectorDomain
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.registry import register_domain
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult, Verdict
from repro.utils.columns import PYTHON_OPS, ColumnOverflowError, active_ops
from repro.utils.errors import SemanticsError
from repro.utils.vectors import BoolVector, IntVector

#: Default cap on the vectors a single nonterminal's set may hold before the
#: value widens to TOP.  64 keeps the quadratic ``Plus#`` transfer (at most
#: cap^2 sums per evaluation) comfortably cheap.
DEFAULT_CAP = 64

#: Default bound on the example count the domain attempts: the Boolean side
#: enumerates up to ``2^|E|`` guard vectors, so larger sets answer UNKNOWN
#: up front (see :meth:`ExamplePowersetDomain.pre_check`).
DEFAULT_MAX_EXAMPLES = 6


@dataclass(frozen=True)
class VectorSet:
    """An exact finite set of output vectors, or ``TOP`` (cap exceeded)."""

    vectors: FrozenSet[IntVector]
    dimension: int
    is_top: bool = False

    @staticmethod
    def bottom(dimension: int) -> "VectorSet":
        return VectorSet(frozenset(), dimension)

    @staticmethod
    def top(dimension: int) -> "VectorSet":
        return VectorSet(frozenset(), dimension, is_top=True)

    @staticmethod
    def of(vectors, dimension: int) -> "VectorSet":
        return VectorSet(frozenset(vectors), dimension)

    def is_empty(self) -> bool:
        return not self.is_top and not self.vectors

    def __len__(self) -> int:
        return len(self.vectors)

    def __iter__(self):
        return iter(sorted(self.vectors, key=lambda vector: vector.values))

    def __str__(self) -> str:
        if self.is_top:
            return "TOP"
        return "{" + ", ".join(str(tuple(v)) for v in self) + "}"


@register_domain("powerset")
class ExamplePowersetDomain(ExampleVectorDomain):
    """Finite input-output behavior sets, exact below the size cap.

    Per-check state: :attr:`lost_exactness` records whether any value hit
    the cap (or a comparison had to over-approximate), which is what allows
    :meth:`check` to claim ``REALIZABLE`` only when the whole solve stayed
    exact.  Create a fresh instance per check (the registry does).
    """

    def __init__(
        self, cap: int = DEFAULT_CAP, max_examples: int = DEFAULT_MAX_EXAMPLES
    ):
        self.cap = int(cap)
        self.max_examples = int(max_examples)
        self.lost_exactness = False

    # -- capping ---------------------------------------------------------------

    def _capped(self, vectors: FrozenSet[IntVector], dimension: int) -> VectorSet:
        if len(vectors) > self.cap:
            self.lost_exactness = True
            return VectorSet.top(dimension)
        return VectorSet(vectors, dimension)

    def _top(self, dimension: int) -> VectorSet:
        self.lost_exactness = True
        return VectorSet.top(dimension)

    # -- integer-sort hooks ----------------------------------------------------

    def int_bottom(self, dimension: int) -> VectorSet:
        return VectorSet.bottom(dimension)

    def int_join(self, left: VectorSet, right: VectorSet) -> VectorSet:
        if left.is_top or right.is_top:
            return self._top(left.dimension or right.dimension)
        return self._capped(left.vectors | right.vectors, left.dimension)

    def int_equal(self, left: VectorSet, right: VectorSet) -> bool:
        return left.is_top == right.is_top and left.vectors == right.vectors

    def from_vector(self, vector: IntVector) -> VectorSet:
        return VectorSet.of([vector], vector.dimension)

    def int_add(self, left: VectorSet, right: VectorSet) -> VectorSet:
        if left.is_empty() or right.is_empty():
            return VectorSet.bottom(left.dimension or right.dimension)
        if left.is_top or right.is_top:
            return self._top(left.dimension or right.dimension)
        left_rows = [vector.values for vector in left.vectors]
        right_rows = [vector.values for vector in right.vectors]
        ops = active_ops()
        try:
            sums = ops.pairwise_sums(left_rows, right_rows)
        except ColumnOverflowError:
            sums = PYTHON_OPS.pairwise_sums(left_rows, right_rows)
        # Deduplicated as canonical tuples above; intern once per distinct row.
        return self._capped(
            frozenset(IntVector._wrap(row) for row in sums), left.dimension
        )

    def ite(
        self,
        guards: BoolVectorSet,
        then_value: VectorSet,
        else_value: VectorSet,
        dimension: int,
    ) -> VectorSet:
        if guards.is_empty() or then_value.is_empty() or else_value.is_empty():
            return VectorSet.bottom(dimension)
        if then_value.is_top or else_value.is_top:
            return self._top(dimension)
        then_rows = [vector.values for vector in then_value.vectors]
        else_rows = [vector.values for vector in else_value.vectors]
        combined = set()
        ops = active_ops()
        for guard in guards:
            try:
                spliced = ops.pairwise_select(guard.values, then_rows, else_rows)
            except ColumnOverflowError:
                spliced = PYTHON_OPS.pairwise_select(
                    guard.values, then_rows, else_rows
                )
            combined.update(spliced)
        return self._capped(
            frozenset(IntVector._wrap(row) for row in combined), dimension
        )

    def compare(
        self, name: str, left: VectorSet, right: VectorSet, dimension: int
    ) -> BoolVectorSet:
        if left.is_empty() or right.is_empty():
            return BoolVectorSet.empty(dimension)
        if left.is_top or right.is_top:
            self.lost_exactness = True
            return BoolVectorSet.top(dimension)
        left_rows = [vector.values for vector in left.vectors]
        right_rows = [vector.values for vector in right.vectors]
        ops = active_ops()
        try:
            outcomes = ops.pairwise_compare(name, left_rows, right_rows)
        except ColumnOverflowError:
            outcomes = PYTHON_OPS.pairwise_compare(name, left_rows, right_rows)
        return BoolVectorSet(
            {BoolVector._wrap(row) for row in outcomes}, dimension
        )

    # -- the check -------------------------------------------------------------

    def _domain_stats(self) -> dict:
        """Effective knobs, surfaced into ``solver_stats`` by the facade."""
        return {
            "powerset_max_examples": self.max_examples,
            "powerset_cap": self.cap,
        }

    def pre_check(self, examples: ExampleSet) -> Optional[CheckResult]:
        if len(examples) > self.max_examples:
            return CheckResult(
                verdict=Verdict.UNKNOWN,
                examples=examples,
                details={
                    "reason": "example set exceeds the powerset budget",
                    "max_examples": self.max_examples,
                    "domain_stats": self._domain_stats(),
                },
            )
        return None

    def check(
        self, start_value: VectorSet, spec: Specification, examples: ExampleSet
    ) -> CheckResult:
        if not isinstance(start_value, VectorSet):
            raise SemanticsError("the start nonterminal must be integer-sorted")
        details = {
            "behaviors": "TOP" if start_value.is_top else len(start_value),
            "exact": not self.lost_exactness,
            "domain_stats": self._domain_stats(),
        }
        if start_value.is_top:
            return CheckResult(
                verdict=Verdict.UNKNOWN, examples=examples, details=details
            )
        if start_value.is_empty():
            return CheckResult(
                verdict=Verdict.UNREALIZABLE, examples=examples, details=details
            )
        for vector in start_value:
            if all(
                spec.holds_on_example(example, vector[index])
                for index, example in enumerate(examples)
            ):
                if self.lost_exactness:
                    # The set is an over-approximation: the witness vector
                    # may be spurious, so the positive direction is lost.
                    return CheckResult(
                        verdict=Verdict.UNKNOWN, examples=examples, details=details
                    )
                details["witness_vector"] = tuple(vector)
                return CheckResult(
                    verdict=Verdict.REALIZABLE, examples=examples, details=details
                )
        # No vector of an over-approximating set satisfies the spec: sound
        # regardless of exactness (the exact set is a subset).
        return CheckResult(
            verdict=Verdict.UNREALIZABLE, examples=examples, details=details
        )


