"""Frozen pre-columnar interval domain, kept as a differential/bench baseline.

The per-component :class:`ReferenceBox` and :class:`ReferenceIntervalDomain`
reproduce ``domains/interval.py`` exactly as it stood before the
struct-of-arrays restructuring: one Python-level loop per box operation,
one :class:`~repro.domains.numeric.Interval` object per example component,
one ``formula.evaluate`` call per threshold candidate.  Like
:mod:`repro.semantics.reference`, this twin exists to answer "did the fast
path change any answer?" and to anchor the ``reference`` leg of the domains
perf suite — it must not be "optimised".

The domain is deliberately **not** registered (the registry's doctest pins
the public domain names); pass an instance directly — ``resolve_domain``
and ``check_examples_abstract`` accept domain instances as well as names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Set, Tuple

from repro.domains.base import ExampleVectorDomain, masked_ite_join
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.interval import _collect_thresholds
from repro.domains.numeric import Interval
from repro.logic.formulas import Formula
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.sygus.spec import Specification
from repro.unreal.result import CheckResult, Verdict
from repro.utils.errors import SemanticsError
from repro.utils.vectors import BoolVector, IntVector


@dataclass(frozen=True)
class ReferenceBox:
    """A product of intervals, one per example component (pre-SoA layout)."""

    intervals: Tuple[Interval, ...]

    @staticmethod
    def bottom(dimension: int) -> "ReferenceBox":
        return ReferenceBox(tuple(Interval.empty() for _ in range(dimension)))

    @staticmethod
    def constant(vector: IntVector) -> "ReferenceBox":
        return ReferenceBox(tuple(Interval.constant(value) for value in vector))

    @property
    def dimension(self) -> int:
        return len(self.intervals)

    def is_empty(self) -> bool:
        return any(interval.is_empty() for interval in self.intervals)

    def join(self, other: "ReferenceBox") -> "ReferenceBox":
        return ReferenceBox(
            tuple(a.join(b) for a, b in zip(self.intervals, other.intervals))
        )

    def widen(self, other: "ReferenceBox") -> "ReferenceBox":
        return ReferenceBox(
            tuple(a.widen(b) for a, b in zip(self.intervals, other.intervals))
        )

    def add(self, other: "ReferenceBox") -> "ReferenceBox":
        return ReferenceBox(
            tuple(a.add(b) for a, b in zip(self.intervals, other.intervals))
        )

    def leq(self, other: "ReferenceBox") -> bool:
        return all(a.leq(b) for a, b in zip(self.intervals, other.intervals))

    def select(self, mask: BoolVector, other: "ReferenceBox") -> "ReferenceBox":
        return ReferenceBox(
            tuple(
                a if keep else b
                for a, b, keep in zip(self.intervals, other.intervals, mask)
            )
        )

    def contains(self, vector: IntVector) -> bool:
        return all(
            interval.contains(value)
            for interval, value in zip(self.intervals, vector)
        )

    def __str__(self) -> str:
        return "<" + ", ".join(str(interval) for interval in self.intervals) + ">"


def _reference_truth_values(
    name: str, left: Interval, right: Interval
) -> List[bool]:
    """The pre-change per-pair truth-value analysis (non-empty intervals)."""

    def lower(interval: Interval) -> float:
        return float("-inf") if interval.low is None else interval.low

    def upper(interval: Interval) -> float:
        return float("inf") if interval.high is None else interval.high

    outcomes: Set[bool] = set()
    if name == "LessThan":
        if lower(left) < upper(right):
            outcomes.add(True)
        if upper(left) >= lower(right):
            outcomes.add(False)
    elif name == "LessEq":
        if lower(left) <= upper(right):
            outcomes.add(True)
        if upper(left) > lower(right):
            outcomes.add(False)
    elif name == "GreaterThan":
        if upper(left) > lower(right):
            outcomes.add(True)
        if lower(left) <= upper(right):
            outcomes.add(False)
    elif name == "GreaterEq":
        if upper(left) >= lower(right):
            outcomes.add(True)
        if lower(left) < upper(right):
            outcomes.add(False)
    else:  # Equal
        if lower(left) <= upper(right) and lower(right) <= upper(left):
            outcomes.add(True)
        if not (lower(left) == upper(left) == lower(right) == upper(right)):
            outcomes.add(False)
    return sorted(outcomes)


def reference_interval_comparison(
    name: str,
    left_intervals: Sequence[Interval],
    right_intervals: Sequence[Interval],
    dimension: int,
) -> BoolVectorSet:
    per_component = [
        _reference_truth_values(name, left_intervals[index], right_intervals[index])
        for index in range(dimension)
    ]
    results: List[List[bool]] = [[]]
    for component in per_component:
        results = [prefix + [value] for prefix in results for value in component]
    return BoolVectorSet([BoolVector(bits) for bits in results], dimension)


def reference_satisfiable_on_interval(
    formula: Formula, variable: str, interval: Interval
) -> bool:
    """The pre-change decision: one ``formula.evaluate`` per candidate."""
    if interval.is_empty():
        return False
    thresholds: Set[int] = set()
    if not _collect_thresholds(formula, variable, thresholds):
        return True
    candidates: Set[int] = set()

    def consider(value: int) -> None:
        if interval.contains(value):
            candidates.add(value)

    for threshold in thresholds:
        for delta in (-1, 0, 1):
            consider(threshold + delta)
    if interval.low is not None:
        consider(interval.low)
    if interval.high is not None:
        consider(interval.high)
    ordered = sorted(thresholds)
    if interval.low is None:
        consider((ordered[0] - 2) if ordered else (interval.high or 0))
    if interval.high is None:
        consider((ordered[-1] + 2) if ordered else (interval.low or 0))
    if not candidates:
        assert interval.low is not None
        candidates.add(interval.low)
    return any(formula.evaluate({variable: value}) for value in candidates)


class ReferenceIntervalDomain(ExampleVectorDomain):
    """The interval domain exactly as before the columnar restructuring."""

    name = "reference-interval"

    def int_bottom(self, dimension: int) -> ReferenceBox:
        return ReferenceBox.bottom(dimension)

    def int_join(self, left: ReferenceBox, right: ReferenceBox) -> ReferenceBox:
        return left.join(right)

    def int_widen(self, previous: ReferenceBox, current: ReferenceBox) -> ReferenceBox:
        return previous.widen(current)

    def int_equal(self, left: ReferenceBox, right: ReferenceBox) -> bool:
        return left.leq(right) and right.leq(left)

    def from_vector(self, vector: IntVector) -> ReferenceBox:
        return ReferenceBox.constant(vector)

    def int_add(self, left: ReferenceBox, right: ReferenceBox) -> ReferenceBox:
        return left.add(right)

    def ite(
        self,
        guards: BoolVectorSet,
        then_value: ReferenceBox,
        else_value: ReferenceBox,
        dimension: int,
    ) -> ReferenceBox:
        return masked_ite_join(
            guards,
            lambda guard: then_value.select(guard, else_value),
            ReferenceBox.bottom(dimension),
            lambda left, right: left.join(right),
        )

    def compare(
        self, name: str, left: ReferenceBox, right: ReferenceBox, dimension: int
    ) -> BoolVectorSet:
        if left.is_empty() or right.is_empty():
            return BoolVectorSet.empty(dimension)
        return reference_interval_comparison(
            name, left.intervals, right.intervals, dimension
        )

    def check(
        self, start_value: ReferenceBox, spec: Specification, examples: ExampleSet
    ) -> CheckResult:
        if not isinstance(start_value, ReferenceBox):
            raise SemanticsError("the start nonterminal must be integer-sorted")
        if start_value.is_empty():
            return CheckResult(
                verdict=Verdict.UNREALIZABLE,
                examples=examples,
                details={"reason": "start symbol derives no terms on these examples"},
            )
        output = LinearExpression.variable("__interval_out")
        for index, example in enumerate(examples):
            instance = spec.instantiate(example, output)
            if not reference_satisfiable_on_interval(
                instance, "__interval_out", start_value.intervals[index]
            ):
                return CheckResult(
                    verdict=Verdict.UNREALIZABLE,
                    examples=examples,
                    details={
                        "reason": "interval refutation",
                        "example_index": index,
                        "interval": str(start_value.intervals[index]),
                    },
                )
        return CheckResult(
            verdict=Verdict.UNKNOWN,
            examples=examples,
            details={"box": str(start_value)},
        )
