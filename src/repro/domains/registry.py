"""Decorator-based registry of abstract domains, mirroring the engine registry.

Domains register themselves at class-definition time::

    @register_domain("interval")
    class IntervalDomain(ExampleVectorDomain):
        ...

and every consumer resolves them by name through :func:`create_domain` — the
generic abstract-GFA solver (:mod:`repro.unreal.approximate`), the domain
engines (``nayInt``, ``nayFin``), and the tests share this one lookup path,
so adding a new abstraction is a one-file change: define the domain class,
decorate it, import its module from :mod:`repro.domains`.

The registry stores classes, not instances: :func:`create_domain` builds a
fresh domain per call, passing knobs straight to the constructor.  Domains
may be *stateful per check* (the example-powerset domain records whether it
ever widened to TOP during a solve, which gates its exactness claim), which
is why sharing instances across checks would be wrong.

Runnable example::

    >>> from repro.domains.registry import create_domain, domain_names
    >>> sorted(domain_names())
    ['interval', 'numeric', 'powerset', 'product']
    >>> create_domain("interval").name
    'interval'
    >>> create_domain("no-such-domain")
    Traceback (most recent call last):
        ...
    repro.utils.errors.UnknownDomainError: unknown abstract domain \
'no-such-domain'; registered domains: interval, numeric, powerset, product
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, TypeVar, Union

from repro.utils.errors import ReproError, UnknownDomainError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.domains.base import AbstractDomain

DomainClass = TypeVar("DomainClass", bound=type)

#: Either a registry name or an already-built domain instance; every API that
#: takes a domain accepts both (instances pass through untouched).
DomainLike = Union[str, "AbstractDomain"]

_REGISTRY: Dict[str, type] = {}


def register_domain(name: str) -> Callable[[DomainClass], DomainClass]:
    """Class decorator adding the domain to the registry under ``name``."""

    def decorator(cls: DomainClass) -> DomainClass:
        existing = _REGISTRY.get(name)
        if existing is not None and existing is not cls:
            raise ReproError(
                f"domain name {name!r} already registered by {existing.__name__}"
            )
        _REGISTRY[name] = cls
        cls.registry_name = name  # type: ignore[attr-defined]
        return cls

    return decorator


def _ensure_builtin_domains() -> None:
    """Import the built-in domain modules so their decorators have run."""
    import repro.domains.combinators  # noqa: F401  (registration side effect)
    import repro.domains.interval  # noqa: F401
    import repro.domains.powerset  # noqa: F401
    import repro.domains.product  # noqa: F401


def domain_names() -> List[str]:
    """The registered domain names, in registration order."""
    _ensure_builtin_domains()
    return list(_REGISTRY)


def get_domain_class(name: str) -> type:
    _ensure_builtin_domains()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise UnknownDomainError(
            f"unknown abstract domain {name!r}; registered domains: {known}"
        ) from None


def create_domain(name: str, **knobs: object) -> "AbstractDomain":
    """Instantiate the domain registered under ``name`` with the given knobs."""
    return get_domain_class(name)(**knobs)


def resolve_domain(domain: DomainLike) -> "AbstractDomain":
    """Accept a registry name or a ready instance; return an instance.

    Fresh instances are built from names on every call because domains may
    carry per-check state (see the module docstring).
    """
    if isinstance(domain, str):
        return create_domain(domain)
    return domain
