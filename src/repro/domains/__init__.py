"""Abstract domains used by the grammar-flow-analysis framework.

Exact domains (the §5/§6 machinery):

* :mod:`repro.domains.semilinear` — semi-linear sets (§5.3), the exact domain
  for integer-valued nonterminals;
* :mod:`repro.domains.boolvectors` — finite sets of Boolean vectors (§6.2),
  the exact domain for Boolean-valued nonterminals;
* :mod:`repro.domains.clia` — the multi-sorted abstract semantics of CLIA
  operators over the two domains above (§6.2).

Pluggable approximate domains (the §4.3 framework — see
:mod:`repro.domains.base` for the :class:`AbstractDomain` protocol and
:mod:`repro.domains.registry` for name-based resolution):

* :mod:`repro.domains.numeric` — the interval and congruence value types;
* :mod:`repro.domains.product` — ``"numeric"``, the interval x congruence
  reduced product (the default, behind NayHorn/NOPE);
* :mod:`repro.domains.interval` — ``"interval"``, per-example boxes with a
  solver-free concretization check (the ``nayInt`` engine);
* :mod:`repro.domains.powerset` — ``"powerset"``, exact finite behavior
  sets (the ``nayFin`` engine);
* :mod:`repro.domains.combinators` — ``"product"``, the generic
  reduced-product combinator.
"""

# Exact value types first: the approximate modules below (and modules that
# import us mid-cycle, e.g. repro.unreal.lia) depend on them.
from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.domains.boolvectors import BoolVectorSet

from repro.domains.base import AbstractDomain, ExampleVectorDomain
from repro.domains.registry import (
    create_domain,
    domain_names,
    register_domain,
    resolve_domain,
)

# Built-in domain implementations (registration side effects).
from repro.domains.interval import Box, IntervalDomain
from repro.domains.powerset import ExamplePowersetDomain, VectorSet
from repro.domains.product import NumericProductDomain
from repro.domains.combinators import PairValue, ReducedProductDomain

__all__ = [
    "AbstractDomain",
    "BoolVectorSet",
    "Box",
    "ExamplePowersetDomain",
    "ExampleVectorDomain",
    "IntervalDomain",
    "LinearSet",
    "NumericProductDomain",
    "PairValue",
    "ReducedProductDomain",
    "SemiLinearSet",
    "VectorSet",
    "create_domain",
    "domain_names",
    "register_domain",
    "resolve_domain",
]
