"""Abstract domains used by the grammar-flow-analysis framework.

* :mod:`repro.domains.semilinear` — semi-linear sets (§5.3), the exact domain
  for integer-valued nonterminals;
* :mod:`repro.domains.boolvectors` — finite sets of Boolean vectors (§6.2),
  the exact domain for Boolean-valued nonterminals;
* :mod:`repro.domains.clia` — the multi-sorted abstract semantics of CLIA
  operators over the two domains above (§6.2), including ``LessThan#`` and
  ``IfThenElse#``;
* :mod:`repro.domains.numeric` — approximate numeric domains (intervals,
  congruences, and their product) used by the Horn-clause/Kleene approximate
  mode described in §4.3.
"""

from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.domains.boolvectors import BoolVectorSet

__all__ = ["LinearSet", "SemiLinearSet", "BoolVectorSet"]
