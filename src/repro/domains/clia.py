"""The multi-sorted abstract semantics of CLIA operators (§6.2).

Integer-sorted values are abstracted by semi-linear sets, Boolean-sorted
values by sets of Boolean vectors.  This module implements the production
functions ``[[g]]#_E`` for every CLIA+ operator:

* the LIA+ operators ``Plus#``, ``Num#``, ``Var#``, ``NegVar#`` (Eqns. 21-24);
* ``LessThan#`` (and the other comparisons), implemented with one integer
  feasibility query per candidate Boolean vector, exactly as described at the
  end of §6.2 ("2^|E| SMT queries");
* ``And#``, ``Or#``, ``Not#`` on Boolean-vector sets;
* ``IfThenElse#`` via ``projSL`` (§6.2).

These functions are exact abstract transformers (Lem. 6.2): applied to
singleton abstractions they return the singleton abstraction of the concrete
result.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Union

from repro.domains.boolvectors import BoolVectorSet
from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.logic.formulas import (
    Formula,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_le,
    atom_lt,
)
from repro.logic.solver import SolverContext
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.utils.errors import SemanticsError
from repro.utils.vectors import BoolVector, IntVector

#: A value of the multi-sorted domain D_CLIA+ (§6.2).
AbstractValue = Union[SemiLinearSet, BoolVectorSet]


def combine(left: AbstractValue, right: AbstractValue) -> AbstractValue:
    """The overloaded ``(+)`` of the multi-sorted domain (footnote 4)."""
    if isinstance(left, SemiLinearSet) and isinstance(right, SemiLinearSet):
        return left.combine(right)
    if isinstance(left, BoolVectorSet) and isinstance(right, BoolVectorSet):
        return left.combine(right)
    raise SemanticsError("cannot combine values of different sorts")


def leq(left: AbstractValue, right: AbstractValue) -> bool:
    """The induced order on the multi-sorted domain."""
    if isinstance(left, SemiLinearSet) and isinstance(right, SemiLinearSet):
        return left.leq(right)
    if isinstance(left, BoolVectorSet) and isinstance(right, BoolVectorSet):
        return left.leq(right)
    raise SemanticsError("cannot compare values of different sorts")


class CliaInterpretation:
    """The production functions ``[[g]]#_E`` for a fixed example set ``E``."""

    def __init__(self, examples: ExampleSet):
        self.examples = examples
        self.dimension = len(examples)

    # -- leaf symbols ---------------------------------------------------------

    def num(self, value: int) -> SemiLinearSet:
        """Eqn. (22): the singleton constant vector ``<c, ..., c>``."""
        return SemiLinearSet.singleton(IntVector.constant(value, self.dimension))

    def var(self, name: str) -> SemiLinearSet:
        """Eqn. (23): the projection of the examples onto one variable."""
        return SemiLinearSet.singleton(self.examples.projection(name))

    def neg_var(self, name: str) -> SemiLinearSet:
        """Eqn. (24): the negated projection."""
        return SemiLinearSet.singleton(-self.examples.projection(name))

    def bool_const(self, value: bool) -> BoolVectorSet:
        return BoolVectorSet.singleton(BoolVector.constant(value, self.dimension))

    # -- integer operators ----------------------------------------------------

    def plus(self, left: SemiLinearSet, right: SemiLinearSet) -> SemiLinearSet:
        """Eqn. (21): ``Plus#`` is the semiring extend operation."""
        return left.extend(right)

    def if_then_else(
        self,
        guards: BoolVectorSet,
        then_value: SemiLinearSet,
        else_value: SemiLinearSet,
    ) -> SemiLinearSet:
        """``IfThenElse#`` (§6.2): per-guard projection and recombination."""
        result = SemiLinearSet.empty(self.dimension)
        for guard in guards:
            branch = then_value.project(guard).extend(else_value.project(~guard))
            result = result.combine(branch)
        return result

    # -- Boolean operators ----------------------------------------------------

    def not_(self, operand: BoolVectorSet) -> BoolVectorSet:
        return operand.negate()

    def and_(self, left: BoolVectorSet, right: BoolVectorSet) -> BoolVectorSet:
        return left.conjoin(right)

    def or_(self, left: BoolVectorSet, right: BoolVectorSet) -> BoolVectorSet:
        return left.disjoin(right)

    def comparison(
        self, name: str, left: SemiLinearSet, right: SemiLinearSet
    ) -> BoolVectorSet:
        """``LessThan#`` and friends: which comparison patterns are achievable?

        For every candidate Boolean vector ``b`` we ask one integer
        feasibility query: is there a member of ``left`` and a member of
        ``right`` whose component-wise comparison equals ``b``?  This is the
        "2^|E| SMT queries" implementation described in §6.2.
        """
        if left.is_empty() or right.is_empty():
            return BoolVectorSet.empty(self.dimension)
        achievable: List[BoolVector] = []
        left_outputs = [
            LinearExpression.variable(f"_cmp_l{i}") for i in range(self.dimension)
        ]
        right_outputs = [
            LinearExpression.variable(f"_cmp_r{i}") for i in range(self.dimension)
        ]
        # The membership skeleton is shared by all 2^|E| queries: assert it
        # once in a solver context (normalized once) and only swap the
        # per-candidate comparison atoms as assumptions.
        context = SolverContext()
        context.assert_formula(left.symbolic(left_outputs, tag="L"))
        context.assert_formula(right.symbolic(right_outputs, tag="R"))
        for candidate in BoolVector.enumerate_all(self.dimension):
            assumptions: List[Formula] = [
                _comparison_formula(
                    name,
                    left_outputs[index],
                    right_outputs[index],
                    candidate[index],
                )
                for index in range(self.dimension)
            ]
            if context.check(assumptions).is_sat:
                achievable.append(candidate)
        return BoolVectorSet(achievable, self.dimension)

    # -- generic dispatch -----------------------------------------------------

    def apply(self, symbol_name: str, payload, args: Sequence[AbstractValue]):
        """Apply ``[[g]]#_E`` by operator name (used by Kleene iteration)."""
        if symbol_name == "Num":
            return self.num(int(payload))
        if symbol_name == "Var":
            return self.var(str(payload))
        if symbol_name == "NegVar":
            return self.neg_var(str(payload))
        if symbol_name == "BoolConst":
            return self.bool_const(bool(payload))
        if symbol_name == "Pass":
            return args[0]
        if symbol_name == "Plus":
            result = args[0]
            for arg in args[1:]:
                result = self.plus(result, arg)  # type: ignore[arg-type]
            return result
        if symbol_name == "IfThenElse":
            return self.if_then_else(args[0], args[1], args[2])  # type: ignore[arg-type]
        if symbol_name == "Not":
            return self.not_(args[0])  # type: ignore[arg-type]
        if symbol_name == "And":
            return self.and_(args[0], args[1])  # type: ignore[arg-type]
        if symbol_name == "Or":
            return self.or_(args[0], args[1])  # type: ignore[arg-type]
        if symbol_name in ("LessThan", "LessEq", "GreaterThan", "GreaterEq", "Equal"):
            return self.comparison(symbol_name, args[0], args[1])  # type: ignore[arg-type]
        raise SemanticsError(f"no abstract semantics for operator {symbol_name}")

    def bottom(self, sort_is_bool: bool) -> AbstractValue:
        """The least element of the appropriate sort."""
        if sort_is_bool:
            return BoolVectorSet.empty(self.dimension)
        return SemiLinearSet.empty(self.dimension)


def _comparison_formula(
    name: str,
    left: LinearExpression,
    right: LinearExpression,
    expected: bool,
) -> Formula:
    """The LIA constraint "left <cmp> right has truth value ``expected``"."""
    positive: Dict[str, Callable[[LinearExpression, LinearExpression], Formula]] = {
        "LessThan": atom_lt,
        "LessEq": atom_le,
        "GreaterThan": atom_gt,
        "GreaterEq": atom_ge,
        "Equal": atom_eq,
    }
    negative: Dict[str, Callable[[LinearExpression, LinearExpression], Formula]] = {
        "LessThan": atom_ge,
        "LessEq": atom_gt,
        "GreaterThan": atom_le,
        "GreaterEq": atom_lt,
        "Equal": lambda a, b: atom_lt(a, b) | atom_gt(a, b),
    }
    builder = positive[name] if expected else negative[name]
    return builder(left, right)
