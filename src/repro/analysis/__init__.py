"""Independent static analyses over the repo's own artifacts.

The one analysis that lives here today is :mod:`repro.analysis.certcheck`,
the standalone proof checker for unrealizability certificates.  Modules in
this package deliberately sit *outside* the solving stack: they may import
lattice/transfer definitions (:mod:`repro.domains`) and term syntax
(:mod:`repro.grammar`), but never the fixpoint drivers (:mod:`repro.gfa`)
or the DPLL(T) core (:mod:`repro.logic.solver`), so a bug in those engines
cannot certify its own output.
"""

from repro.analysis.certcheck import CertcheckResult, check_certificate

__all__ = ["CertcheckResult", "check_certificate"]
