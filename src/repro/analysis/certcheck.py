"""An independent static checker for unrealizability certificates.

Every engine attaches a *certificate* to an ``UNREALIZABLE`` verdict (see
:mod:`repro.unreal.certificates` for the builders).  This module re-verifies
such a certificate from first principles, without re-running any engine,
fixpoint driver, or solver:

* ``unproductive`` — the grammar's start nonterminal derives no term at all;
  re-checked with the pure productivity fixed point.
* ``abstract_fixpoint`` — one abstract value per nonterminal of the
  GFA-normalized grammar (interval boxes, interval×congruence products, or
  concrete powersets).  Checked for **inductiveness** — every production's
  abstract transfer applied to the claimed values stays below the claimed
  left-hand-side value, one local lattice check per production — and
  **refutation** — the start nonterminal's value excludes every output the
  specification accepts on the certificate's examples.
* ``semilinear_fixpoint`` — the exact engine's semi-linear fixpoint, with a
  per-equation *subsumption justification* (explicit non-negative integer
  combinations) wherever a transferred linear set is not literally one of
  the claimed sets.  Refutation is discharged by a small built-in rational
  Fourier–Motzkin refuter over the symbolic members of each linear set.
* ``chc_model`` — the Horn-clause engine's model.  The clause system is
  re-encoded and compared verbatim, then each production clause is checked
  as a numeric transfer inclusion and the query clause as a refutation.

Trust base
----------

The checker reuses only the lattice/transfer *definitions*
(:mod:`repro.domains`), the term/grammar syntax (:mod:`repro.grammar`), the
pure clause encoder (:mod:`repro.horn.clauses`) and the formula AST
(:mod:`repro.logic.formulas`/``terms``).  It must never import
``repro.gfa.fixpoint``, ``repro.gfa.newton``, ``repro.logic.solver`` or
``repro.domains.clia`` (which pulls the solver in at module level) — a bug
in the fixpoint or DPLL(T) core then cannot self-certify.
``tests/test_certcheck.py`` enforces this both statically and by importing
this module under a blocker that poisons those modules.

Soundness notes
---------------

Inductiveness of the claimed values plus a refuting start value is exactly
the premise of Alg. 1's soundness argument (Thm. 4.5(1)): the claimed
values over-approximate every derivable term's behavior on the examples, so
an excluded specification means no term in the grammar satisfies the spec
on the examples — and unrealizability on any genuine finite example set
lifts to the full problem (Lem. 3.5).  Per-example refutation is complete
for product-shaped values because the instantiated specification splits
into one conjunct per example, each over a single output variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.domains.base import AbstractDomain
from repro.domains.boolvectors import BoolVectorSet
from repro.domains.interval import (
    Box,
    interval_comparison,
    satisfiable_on_interval,
    satisfiable_on_interval_congruence,
)
from repro.domains.numeric import Congruence, Interval, ProductValue
from repro.domains.powerset import VectorSet
from repro.domains.registry import create_domain
from repro.domains.semilinear import LinearSet, SemiLinearSet
from repro.grammar.alphabet import Sort
from repro.grammar.analysis import productive_nonterminals
from repro.grammar.rtg import Nonterminal, Production, RegularTreeGrammar
from repro.grammar.transforms import normalize_for_gfa
from repro.logic.formulas import (
    Atom,
    And,
    BoolLit,
    Comparison,
    FALSE,
    Formula,
    Not,
    Or,
    TRUE,
    atom_eq,
    atom_ge,
    atom_gt,
    atom_le,
    atom_lt,
    conjunction,
    disjunction,
    make_atom,
    negation,
)
from repro.logic.terms import LinearExpression
from repro.semantics.examples import ExampleSet
from repro.sygus.problem import SyGuSProblem
from repro.sygus.spec import Specification
from repro.utils.vectors import BoolVector, IntVector

#: The certificate payload format this checker understands.
CERTIFICATE_FORMAT = 1

#: Output variable used when instantiating the specification for refutation.
#: Deliberately distinct from every engine's choice so a certificate cannot
#: smuggle constraints onto the checker's variable.
_OUT = "__cert_out"

#: Abstract domains the ``abstract_fixpoint`` kind may name.  These are the
#: domains whose transfer/lattice definitions are pure (no solver import).
_SUPPORTED_DOMAINS = ("interval", "numeric", "powerset")

#: Knobs each supported domain may carry in a certificate.
_ALLOWED_KNOBS = {
    "interval": frozenset(),
    "numeric": frozenset(),
    "powerset": frozenset({"cap", "max_examples"}),
}

#: Expected integer-sort value class per supported domain.
_INT_VALUE_TYPES = {"interval": Box, "numeric": ProductValue, "powerset": VectorSet}

#: Caps for the built-in refuter: beyond these it *gives up* (rejects the
#: certificate) rather than spending unbounded time.  Both directions stay
#: sound — the checker only ever errs toward rejection.
_DNF_LIMIT = 4096
_FM_ROW_LIMIT = 4096
_ELIMINATION_FUEL = 400
_BOX_PROPAGATION_FUEL = 256
_BOX_ENUM_LIMIT = 4096


class _Malformed(Exception):
    """Internal: a structural problem in the certificate payload."""


@dataclass
class CertcheckResult:
    """The outcome of one certificate check.

    ``ok`` is True only when every local obligation was verified; ``reason``
    explains the first failed obligation otherwise.
    """

    ok: bool
    kind: str = ""
    reason: str = ""
    productions_checked: int = 0
    refutation_checked: bool = False

    def __bool__(self) -> bool:
        return self.ok


def _reject(kind: str, reason: str) -> CertcheckResult:
    return CertcheckResult(ok=False, kind=kind, reason=reason)


def check_certificate(
    problem: SyGuSProblem, certificate: object
) -> CertcheckResult:
    """Re-verify an unrealizability certificate against ``problem``.

    Never raises: malformed payloads are rejected with a reason.  A ``True``
    result means unrealizability of ``problem`` has been independently
    established from the certificate's contents alone.
    """
    if not isinstance(certificate, dict):
        return _reject("", "certificate must be a JSON object")
    kind = certificate.get("kind")
    if certificate.get("format") != CERTIFICATE_FORMAT:
        return _reject(
            str(kind or ""),
            f"unsupported certificate format {certificate.get('format')!r}",
        )
    try:
        if kind == "unproductive":
            return _check_unproductive(problem, certificate)
        if kind == "abstract_fixpoint":
            return _check_abstract(problem, certificate)
        if kind == "semilinear_fixpoint":
            return _check_semilinear(problem, certificate)
        if kind == "chc_model":
            return _check_chc(problem, certificate)
    except _Malformed as error:
        return _reject(str(kind), str(error))
    except Exception as error:  # noqa: BLE001 - a checker must not crash
        return _reject(
            str(kind), f"malformed certificate: {type(error).__name__}: {error}"
        )
    return _reject(str(kind), f"unknown certificate kind: {kind!r}")


# ---------------------------------------------------------------------------
# Payload decoding
# ---------------------------------------------------------------------------


def _require_int(value: object, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _Malformed(f"{what} must be an integer, got {value!r}")
    return value


def _decode_examples(certificate: Dict[str, object]) -> ExampleSet:
    raw = certificate.get("examples")
    if not isinstance(raw, (list, tuple)) or not raw:
        raise _Malformed("certificate carries no examples")
    assignments = []
    for entry in raw:
        if not isinstance(entry, dict):
            raise _Malformed("each example must be a variable->integer object")
        assignments.append(
            {str(name): _require_int(value, f"example value for {name}")
             for name, value in entry.items()}
        )
    return ExampleSet.from_dicts(assignments)


def encode_interval(interval: Interval) -> List[Optional[int]]:
    if interval.is_empty():
        return [0, -1]
    return [interval.low, interval.high]


def _decode_interval(raw: object) -> Interval:
    if not isinstance(raw, (list, tuple)) or len(raw) != 2:
        raise _Malformed(f"interval must be a [low, high] pair, got {raw!r}")
    low = None if raw[0] is None else _require_int(raw[0], "interval bound")
    high = None if raw[1] is None else _require_int(raw[1], "interval bound")
    interval = Interval(low, high)
    # Canonicalise the empty interval so lattice equality is structural.
    return Interval.empty() if interval.is_empty() else interval


def _decode_congruence(raw: object) -> Congruence:
    if raw is None:
        return Congruence.empty_value()
    if not isinstance(raw, (list, tuple)) or len(raw) != 2:
        raise _Malformed(f"congruence must be null or [r, m], got {raw!r}")
    remainder = _require_int(raw[0], "congruence remainder")
    modulus = _require_int(raw[1], "congruence modulus")
    if modulus < 0 or (modulus > 0 and not 0 <= remainder < modulus):
        raise _Malformed(f"congruence [{remainder}, {modulus}] is not normalised")
    return Congruence(remainder, modulus)


def _decode_int_vector(raw: object, dimension: int) -> IntVector:
    if not isinstance(raw, (list, tuple)) or len(raw) != dimension:
        raise _Malformed(f"vector must have {dimension} components, got {raw!r}")
    return IntVector(tuple(_require_int(v, "vector component") for v in raw))


def encode_value(value: object) -> Dict[str, object]:
    """Serialise one abstract value into its JSON certificate form."""
    if isinstance(value, Box):
        return {
            "type": "box",
            "intervals": [encode_interval(iv) for iv in value.intervals],
        }
    if isinstance(value, ProductValue):
        return {
            "type": "product",
            "intervals": [encode_interval(iv) for iv in value.intervals],
            "congruences": [
                None if c.is_empty() else [c.remainder, c.modulus]
                for c in value.congruences
            ],
        }
    if isinstance(value, VectorSet):
        return {
            "type": "vector_set",
            "is_top": value.is_top,
            "vectors": [list(vector.values) for vector in value],
        }
    if isinstance(value, BoolVectorSet):
        return {
            "type": "bool_set",
            "bits": sorted(vector.bits for vector in value),
        }
    if isinstance(value, SemiLinearSet):
        return {
            "type": "semilinear",
            "linear_sets": [
                {
                    "offset": list(ls.offset.values),
                    "generators": [list(g.values) for g in ls.generators],
                }
                for ls in value.linear_sets
            ],
        }
    raise _Malformed(f"cannot encode abstract value of type {type(value).__name__}")


def decode_value(raw: object, dimension: int) -> object:
    """Deserialise one abstract value; validates shape and dimension."""
    if not isinstance(raw, dict):
        raise _Malformed(f"abstract value must be an object, got {raw!r}")
    value_type = raw.get("type")
    if value_type == "box":
        intervals = raw.get("intervals")
        if not isinstance(intervals, (list, tuple)) or len(intervals) != dimension:
            raise _Malformed(f"box must carry {dimension} intervals")
        return Box([_decode_interval(entry) for entry in intervals])
    if value_type == "product":
        intervals = raw.get("intervals")
        congruences = raw.get("congruences")
        if (
            not isinstance(intervals, (list, tuple))
            or not isinstance(congruences, (list, tuple))
            or len(intervals) != dimension
            or len(congruences) != dimension
        ):
            raise _Malformed(
                f"product must carry {dimension} intervals and congruences"
            )
        return ProductValue(
            tuple(_decode_interval(entry) for entry in intervals),
            tuple(_decode_congruence(entry) for entry in congruences),
        )
    if value_type == "vector_set":
        if raw.get("is_top"):
            return VectorSet.top(dimension)
        vectors = raw.get("vectors")
        if not isinstance(vectors, (list, tuple)):
            raise _Malformed("vector_set must carry a vector list")
        return VectorSet.of(
            [_decode_int_vector(entry, dimension) for entry in vectors], dimension
        )
    if value_type == "bool_set":
        bits = raw.get("bits")
        if not isinstance(bits, (list, tuple)):
            raise _Malformed("bool_set must carry a bits list")
        decoded = []
        for pattern in bits:
            pattern = _require_int(pattern, "bool_set bits")
            if not 0 <= pattern < (1 << dimension):
                raise _Malformed(f"bit pattern {pattern} out of range")
            decoded.append(pattern)
        return BoolVectorSet.from_packed(decoded, dimension)
    if value_type == "semilinear":
        entries = raw.get("linear_sets")
        if not isinstance(entries, (list, tuple)):
            raise _Malformed("semilinear must carry a linear_sets list")
        linear_sets = []
        for entry in entries:
            if not isinstance(entry, dict):
                raise _Malformed("each linear set must be an object")
            offset = _decode_int_vector(entry.get("offset"), dimension)
            generators_raw = entry.get("generators", [])
            if not isinstance(generators_raw, (list, tuple)):
                raise _Malformed("generators must be a list")
            generators = [
                _decode_int_vector(g, dimension) for g in generators_raw
            ]
            linear_sets.append(LinearSet(offset, generators))
        return SemiLinearSet(linear_sets, dimension)
    raise _Malformed(f"unknown abstract value type {value_type!r}")


# ---------------------------------------------------------------------------
# Kind: unproductive
# ---------------------------------------------------------------------------


def _check_unproductive(
    problem: SyGuSProblem, certificate: Dict[str, object]
) -> CertcheckResult:
    productive = productive_nonterminals(problem.grammar)
    if problem.grammar.start in productive:
        return _reject("unproductive", "the start nonterminal is productive")
    return CertcheckResult(ok=True, kind="unproductive")


# ---------------------------------------------------------------------------
# Kind: abstract_fixpoint (and the numeric leg of chc_model)
# ---------------------------------------------------------------------------


def _decode_domain_values(
    grammar: RegularTreeGrammar,
    raw_values: object,
    dimension: int,
    int_type: type,
    key_of,
) -> Dict[Nonterminal, object]:
    if not isinstance(raw_values, dict):
        raise _Malformed("certificate values must be an object")
    values: Dict[Nonterminal, object] = {}
    for nonterminal in grammar.nonterminals:
        key = key_of(nonterminal)
        raw = raw_values.get(key)
        if raw is None:
            raise _Malformed(f"no claimed value for nonterminal {key}")
        value = decode_value(raw, dimension)
        expected = BoolVectorSet if nonterminal.sort == Sort.BOOL else int_type
        if not isinstance(value, expected):
            raise _Malformed(
                f"value for {key} has type {type(value).__name__}, "
                f"expected {expected.__name__}"
            )
        values[nonterminal] = value
    return values


def _check_inductive(
    domain: AbstractDomain,
    grammar: RegularTreeGrammar,
    values: Dict[Nonterminal, object],
    examples: ExampleSet,
) -> Optional[str]:
    """One local lattice check per production; None when all hold."""
    for production in grammar.productions:
        arguments = [values[argument] for argument in production.args]
        computed = domain.transfer(production, arguments, examples)
        claimed = values[production.lhs]
        if not domain.equal(domain.join(computed, claimed), claimed):
            return (
                f"production {production.lhs.name} <- {production.symbol} "
                "transfers above its claimed value"
            )
    return None


def _refutes_value(
    value: object, spec: Specification, examples: ExampleSet
) -> bool:
    """Does the claimed start value exclude every spec-satisfying output?"""
    if isinstance(value, VectorSet):
        if value.is_top:
            return False
        for vector in value:
            if all(
                spec.holds_on_example(example, vector[index])
                for index, example in enumerate(examples)
            ):
                return False
        return True
    if isinstance(value, Box):
        intervals: Sequence[Interval] = value.intervals
        congruences: Optional[Sequence[Congruence]] = None
    elif isinstance(value, ProductValue):
        intervals = value.intervals
        congruences = value.congruences
    else:
        return False
    output = LinearExpression.variable(_OUT)
    # The instantiated spec is a conjunction with one independent output
    # variable per example, so unsatisfiability of any single conjunct over
    # its component refutes the whole box/product (and is complete for it).
    for index, example in enumerate(examples):
        formula = spec.instantiate(example, output)
        if congruences is None:
            if not satisfiable_on_interval(formula, _OUT, intervals[index]):
                return True
        elif not satisfiable_on_interval_congruence(
            formula, _OUT, intervals[index], congruences[index]
        ):
            return True
    return False


def _check_abstract(
    problem: SyGuSProblem, certificate: Dict[str, object]
) -> CertcheckResult:
    kind = "abstract_fixpoint"
    domain_name = certificate.get("domain")
    if domain_name not in _SUPPORTED_DOMAINS:
        return _reject(kind, f"unsupported abstract domain {domain_name!r}")
    knobs_raw = certificate.get("domain_knobs") or {}
    if not isinstance(knobs_raw, dict):
        return _reject(kind, "domain_knobs must be an object")
    allowed = _ALLOWED_KNOBS[domain_name]
    knobs = {}
    for name, value in knobs_raw.items():
        if name not in allowed:
            return _reject(kind, f"unknown domain knob {name!r}")
        knobs[name] = _require_int(value, f"domain knob {name}")
    domain = create_domain(domain_name, **knobs)
    examples = _decode_examples(certificate)
    grammar = normalize_for_gfa(problem.grammar)
    values = _decode_domain_values(
        grammar,
        certificate.get("values"),
        len(examples),
        _INT_VALUE_TYPES[domain_name],
        lambda nonterminal: nonterminal.name,
    )
    failure = _check_inductive(domain, grammar, values, examples)
    if failure is not None:
        return _reject(kind, failure)
    if not _refutes_value(values[grammar.start], problem.spec, examples):
        return _reject(kind, "the start value does not refute the specification")
    return CertcheckResult(
        ok=True,
        kind=kind,
        productions_checked=len(grammar.productions),
        refutation_checked=True,
    )


# ---------------------------------------------------------------------------
# Kind: chc_model
# ---------------------------------------------------------------------------


def _check_chc(
    problem: SyGuSProblem, certificate: Dict[str, object]
) -> CertcheckResult:
    # Imported lazily to dodge the package cycle through repro.horn's
    # __init__ (which pulls the engine in); the clauses module itself is
    # pure and stays inside the checker's allowed trust base.
    from repro.horn.clauses import _predicate_name, encode_gfa_as_horn

    kind = "chc_model"
    examples = _decode_examples(certificate)
    system = encode_gfa_as_horn(problem.grammar, examples, problem.spec)
    stored = certificate.get("clauses")
    rendered = [clause.render() for clause in system.clauses]
    if not isinstance(stored, (list, tuple)) or list(stored) != rendered:
        return _reject(kind, "stored clauses do not match the re-encoded system")
    grammar = normalize_for_gfa(problem.grammar)
    # Clauses are generated one per normalized production (in order), so the
    # per-clause model check *is* the per-production transfer check in the
    # numeric domain, and the query clause check is the refutation.
    domain = create_domain("numeric")
    values = _decode_domain_values(
        grammar,
        certificate.get("model"),
        len(examples),
        ProductValue,
        _predicate_name,
    )
    failure = _check_inductive(domain, grammar, values, examples)
    if failure is not None:
        return _reject(kind, failure)
    if not _refutes_value(values[grammar.start], problem.spec, examples):
        return _reject(kind, "the model does not refute the query clause")
    return CertcheckResult(
        ok=True,
        kind=kind,
        productions_checked=len(grammar.productions),
        refutation_checked=True,
    )


# ---------------------------------------------------------------------------
# Kind: semilinear_fixpoint
# ---------------------------------------------------------------------------


def semilinear_coordinate_intervals(
    value: SemiLinearSet, dimension: int
) -> Tuple[Interval, ...]:
    """The per-coordinate interval hull of a semi-linear set.

    Coordinate ``j`` of ``<u, V>`` ranges over ``u_j + sum l_i * v_i[j]``
    with ``l_i >= 0`` independent, so its hull is ``[u_j, +inf)`` as soon as
    some generator is positive there, ``(-inf, u_j]`` for a negative one,
    and the exact point otherwise; the hull of a union is the join.  Shared
    by the checker's coarse comparison transfer and the builder's coarse
    CLIA interpretation, so both sides compute the identical abstraction.
    """
    result = [Interval.empty()] * dimension
    for linear_set in value.linear_sets:
        for index in range(dimension):
            base = linear_set.offset[index]
            low: Optional[int] = base
            high: Optional[int] = base
            for generator in linear_set.generators:
                component = generator[index]
                if component > 0:
                    high = None
                elif component < 0:
                    low = None
            result[index] = result[index].join(Interval(low, high))
    return tuple(result)


_COMPARISONS = frozenset(
    {"LessThan", "LessEq", "GreaterThan", "GreaterEq", "Equal"}
)

#: Atom builders for the refutation-pruned comparison transfer, keyed by the
#: grammar's comparison symbol names.
_COMPARISON_ATOMS = {
    "LessThan": atom_lt,
    "LessEq": atom_le,
    "GreaterThan": atom_gt,
    "GreaterEq": atom_ge,
    "Equal": atom_eq,
}

#: Cap on refuter calls a single comparison transfer may spend before it
#: falls back to the plain interval-hull result (still sound, just coarser).
_COMPARISON_WORK_LIMIT = 512


def _member_expression(
    linear_set: LinearSet, coordinate: int, prefix: str
) -> LinearExpression:
    """Coordinate ``coordinate`` of a symbolic member of ``linear_set``."""
    return LinearExpression(
        {
            f"{prefix}{index}": generator[coordinate]
            for index, generator in enumerate(linear_set.generators)
            if generator[coordinate]
        },
        linear_set.offset[coordinate],
    )


def semilinear_comparison(
    name: str, left: SemiLinearSet, right: SemiLinearSet, dimension: int
) -> BoolVectorSet:
    """A sound Boolean transfer for ``left <op> right`` over semi-linear sets.

    Starts from the per-coordinate interval-hull comparison and then tries to
    *refute* each surviving Boolean vector jointly: candidate ``b`` stays only
    if, for some pair of linear sets, the system "a member of the left set and
    a member of the right set whose coordinate-wise comparison outcomes are
    exactly ``b``" cannot be proven integer-infeasible by the built-in
    refuter.  Every genuinely realizable ``b`` survives (the refuter is
    one-sided), so the result over-approximates the exact transfer while
    staying strictly below the hull on problems like ``2a+3b+4c == 1``.
    Shared by the checker and the builder's coarse CLIA interpretation.
    """
    hull = interval_comparison(
        name,
        semilinear_coordinate_intervals(left, dimension),
        semilinear_coordinate_intervals(right, dimension),
        dimension,
    )
    candidates = list(hull)
    pairs = [
        (left_set, right_set)
        for left_set in left.linear_sets
        for right_set in right.linear_sets
    ]
    if not pairs or len(candidates) * len(pairs) > _COMPARISON_WORK_LIMIT:
        return hull
    atom_of = _COMPARISON_ATOMS[name]
    nonnegativity: Dict[Tuple[LinearSet, LinearSet], List[Formula]] = {}
    kept = []
    for candidate in candidates:
        for left_set, right_set in pairs:
            base = nonnegativity.get((left_set, right_set))
            if base is None:
                base = [
                    atom_ge(LinearExpression.variable(f"{prefix}{index}"), 0)
                    for prefix, generators in (
                        ("__cmp_a", left_set.generators),
                        ("__cmp_b", right_set.generators),
                    )
                    for index in range(len(generators))
                ]
                nonnegativity[(left_set, right_set)] = base
            conjuncts = list(base)
            for coordinate in range(dimension):
                atom = atom_of(
                    _member_expression(left_set, coordinate, "__cmp_a"),
                    _member_expression(right_set, coordinate, "__cmp_b"),
                )
                conjuncts.append(atom if candidate[coordinate] else negation(atom))
            if not refute_integer_formula(conjunction(conjuncts)):
                kept.append(candidate)
                break
    return BoolVectorSet(kept, dimension)


def _semilinear_transfer(
    production: Production,
    int_values: Dict[Nonterminal, SemiLinearSet],
    bool_values: Dict[Nonterminal, BoolVectorSet],
    examples: ExampleSet,
) -> object:
    """The (coarse-on-comparisons) semi-linear transfer of one production.

    Integer operators use the exact semiring operations; comparisons use the
    refutation-pruned hull of :func:`semilinear_comparison`, which
    over-approximates the exact Boolean transfer — enough for inductiveness,
    since claimed Boolean values from the coarse re-solve contain this
    transfer by construction (the builder runs the identical function).
    """
    symbol = production.symbol
    name = symbol.name
    dimension = len(examples)
    if name == "Num":
        return SemiLinearSet.singleton(
            IntVector.constant(int(symbol.payload), dimension)
        )
    if name == "Var":
        return SemiLinearSet.singleton(examples.projection(str(symbol.payload)))
    if name == "NegVar":
        return SemiLinearSet.singleton(
            examples.projection(str(symbol.payload)).scale(-1)
        )
    if name == "BoolConst":
        return BoolVectorSet.singleton(
            BoolVector.constant(bool(symbol.payload), dimension)
        )
    if name == "Pass":
        argument = production.args[0]
        if argument.sort == Sort.BOOL:
            return bool_values[argument]
        return int_values[argument]
    if name == "Plus":
        left, right = (int_values[argument] for argument in production.args)
        return left.extend(right)
    if name == "IfThenElse":
        guard_nt, then_nt, else_nt = production.args
        guards = bool_values[guard_nt]
        then_value = int_values[then_nt]
        else_value = int_values[else_nt]
        result = SemiLinearSet.empty(dimension)
        for guard in guards:
            piece = then_value.project(guard).extend(else_value.project(~guard))
            result = result.combine(piece)
        return result
    if name == "Not":
        return bool_values[production.args[0]].negate()
    if name == "And":
        left, right = (bool_values[argument] for argument in production.args)
        return left.conjoin(right)
    if name == "Or":
        left, right = (bool_values[argument] for argument in production.args)
        return left.disjoin(right)
    if name in _COMPARISONS:
        left, right = (int_values[argument] for argument in production.args)
        if left.is_empty() or right.is_empty():
            return BoolVectorSet.empty(dimension)
        return semilinear_comparison(name, left, right, dimension)
    raise _Malformed(f"unsupported operator {name} in semilinear certificate")


def _verify_subsumption(
    candidate: LinearSet, claimed: SemiLinearSet, justification: object
) -> bool:
    """Check an explicit witness that ``candidate`` ⊆ some claimed set.

    The justification names a container set ``<u, G>`` plus non-negative
    integer coefficients expressing the candidate's offset as ``u + sum
    lambda_i * G_i`` and each candidate generator as ``sum M_ki * G_i``.
    Any member ``offset + sum mu_k * v_k`` then rewrites to ``u + sum_i
    (lambda_i + sum_k mu_k * M_ki) * G_i`` with non-negative integer
    coefficients — a member of the container.  Pure integer arithmetic, no
    solver involved.
    """
    if not isinstance(justification, dict):
        return False
    container_index = justification.get("container")
    if (
        isinstance(container_index, bool)
        or not isinstance(container_index, int)
        or not 0 <= container_index < len(claimed.linear_sets)
    ):
        return False
    container = claimed.linear_sets[container_index]
    lambdas = justification.get("offset_lambdas")
    if not isinstance(lambdas, (list, tuple)) or len(lambdas) != len(
        container.generators
    ):
        return False
    offset = container.offset
    for coefficient, generator in zip(lambdas, container.generators):
        if isinstance(coefficient, bool) or not isinstance(coefficient, int):
            return False
        if coefficient < 0:
            return False
        if coefficient:
            offset = offset + generator.scale(coefficient)
    if offset != candidate.offset:
        return False
    images = justification.get("generator_images")
    if not isinstance(images, (list, tuple)) or len(images) != len(
        candidate.generators
    ):
        return False
    dimension = candidate.dimension
    for row, generator in zip(images, candidate.generators):
        if not isinstance(row, (list, tuple)) or len(row) != len(
            container.generators
        ):
            return False
        image = IntVector.zero(dimension)
        for coefficient, container_generator in zip(row, container.generators):
            if isinstance(coefficient, bool) or not isinstance(coefficient, int):
                return False
            if coefficient < 0:
                return False
            if coefficient:
                image = image + container_generator.scale(coefficient)
        if image != generator:
            return False
    return True


def _refute_semilinear(
    value: SemiLinearSet, spec: Specification, examples: ExampleSet
) -> bool:
    """No member of the claimed start set may satisfy the spec everywhere.

    Each linear set's members are ``offset + sum l_i * g_i`` with fresh
    non-negative integer multiplicities; substituting the symbolic member
    into the instantiated spec per example and refuting the conjunction with
    the built-in integer refuter covers the whole set at once.
    """
    for linear_set in value.linear_sets:
        names = [f"__cert_lam_{index}" for index in range(len(linear_set.generators))]
        parts: List[Formula] = []
        for index, example in enumerate(examples):
            coefficients = {
                name: generator[index]
                for name, generator in zip(names, linear_set.generators)
            }
            member = LinearExpression(coefficients, linear_set.offset[index])
            parts.append(spec.instantiate(example, member))
        for name in names:
            parts.append(atom_ge(LinearExpression.variable(name), 0))
        if not refute_integer_formula(conjunction(parts)):
            return False
    return True


def _check_semilinear(
    problem: SyGuSProblem, certificate: Dict[str, object]
) -> CertcheckResult:
    kind = "semilinear_fixpoint"
    examples = _decode_examples(certificate)
    dimension = len(examples)
    grammar = normalize_for_gfa(problem.grammar)
    if grammar.start.sort == Sort.BOOL:
        return _reject(kind, "Boolean-sorted start nonterminals are unsupported")
    raw_int = certificate.get("values")
    raw_bool = certificate.get("boolean_values") or {}
    if not isinstance(raw_int, dict) or not isinstance(raw_bool, dict):
        return _reject(kind, "values/boolean_values must be objects")
    int_values: Dict[Nonterminal, SemiLinearSet] = {}
    bool_values: Dict[Nonterminal, BoolVectorSet] = {}
    for nonterminal in grammar.nonterminals:
        if nonterminal.sort == Sort.BOOL:
            raw = raw_bool.get(nonterminal.name)
            if raw is None:
                return _reject(kind, f"no Boolean value for {nonterminal.name}")
            value = decode_value(raw, dimension)
            if not isinstance(value, BoolVectorSet):
                return _reject(kind, f"{nonterminal.name} must be a bool_set")
            bool_values[nonterminal] = value
        else:
            raw = raw_int.get(nonterminal.name)
            if raw is None:
                return _reject(kind, f"no claimed value for {nonterminal.name}")
            value = decode_value(raw, dimension)
            if not isinstance(value, SemiLinearSet):
                return _reject(kind, f"{nonterminal.name} must be semilinear")
            int_values[nonterminal] = value
    justifications = certificate.get("justifications") or {}
    if not isinstance(justifications, dict):
        return _reject(kind, "justifications must be an object")
    for index, production in enumerate(grammar.productions):
        computed = _semilinear_transfer(production, int_values, bool_values, examples)
        if production.lhs.sort == Sort.BOOL:
            if not computed.leq(bool_values[production.lhs]):
                return _reject(
                    kind,
                    f"Boolean production {production.lhs.name} <- "
                    f"{production.symbol} transfers above its claimed value",
                )
            continue
        claimed = int_values[production.lhs]
        claimed_sets = set(claimed.linear_sets)
        for position, linear_set in enumerate(computed.linear_sets):
            if linear_set in claimed_sets:
                continue
            justification = justifications.get(f"{index}:{position}")
            if justification is None or not _verify_subsumption(
                linear_set, claimed, justification
            ):
                return _reject(
                    kind,
                    f"production {production.lhs.name} <- {production.symbol}: "
                    f"transferred linear set #{position} is not justified "
                    "inside the claimed value",
                )
    if not _refute_semilinear(int_values[grammar.start], problem.spec, examples):
        return _reject(kind, "the start value does not refute the specification")
    return CertcheckResult(
        ok=True,
        kind=kind,
        productions_checked=len(grammar.productions),
        refutation_checked=True,
    )


# ---------------------------------------------------------------------------
# The built-in integer refuter
# ---------------------------------------------------------------------------


def refute_integer_formula(formula: Formula) -> bool:
    """Try to *prove* a QF-LIA formula unsatisfiable over the integers.

    True means proven UNSAT (sound); False means "could not refute" — the
    procedure gives up rather than answering SAT, so it is one-sided by
    design.  Pipeline: negation-normal form with ``!=`` split into strict
    sides, a size-capped DNF, then per disjunct a gcd divisibility test,
    elimination of unit-coefficient equalities, rational Fourier–Motzkin
    (a rational contradiction implies integer infeasibility), and finally
    integer bound propagation with small-box enumeration (for systems that
    are rationally feasible but have no integer point).
    """
    disjuncts = _dnf(_normalize(formula, True))
    if disjuncts is None:
        return False
    return all(_refute_conjunction(disjunct) for disjunct in disjuncts)


def _normalize(formula: Formula, positive: bool) -> Formula:
    """NNF with atoms restricted to ``<= 0`` and ``== 0`` comparisons."""
    if isinstance(formula, BoolLit):
        return TRUE if formula.value == positive else FALSE
    if isinstance(formula, Atom):
        if not positive:
            return _normalize(formula.negated(), True)
        expression = formula.expression
        comparison = formula.comparison
        if comparison in (Comparison.LE, Comparison.EQ):
            return formula
        if comparison == Comparison.LT:
            return make_atom(expression + 1, Comparison.LE)
        # NE: e != 0  <=>  e <= -1  or  -e <= -1.
        return disjunction(
            [
                make_atom(expression + 1, Comparison.LE),
                make_atom(1 - expression, Comparison.LE),
            ]
        )
    if isinstance(formula, Not):
        return _normalize(formula.operand, not positive)
    if isinstance(formula, And):
        parts = [_normalize(operand, positive) for operand in formula.operands]
        return conjunction(parts) if positive else disjunction(parts)
    if isinstance(formula, Or):
        parts = [_normalize(operand, positive) for operand in formula.operands]
        return disjunction(parts) if positive else conjunction(parts)
    raise _Malformed(f"cannot normalise formula node {type(formula).__name__}")


def _dnf(formula: Formula) -> Optional[List[Tuple[Atom, ...]]]:
    """Disjunctive normal form as atom tuples; None when the cap is hit."""
    if isinstance(formula, BoolLit):
        return [()] if formula.value else []
    if isinstance(formula, Atom):
        return [(formula,)]
    if isinstance(formula, Or):
        result: List[Tuple[Atom, ...]] = []
        for operand in formula.operands:
            sub = _dnf(operand)
            if sub is None:
                return None
            result.extend(sub)
            if len(result) > _DNF_LIMIT:
                return None
        return result
    if isinstance(formula, And):
        result = [()]
        for operand in formula.operands:
            sub = _dnf(operand)
            if sub is None:
                return None
            result = [existing + extra for existing in result for extra in sub]
            if not result:
                return []
            if len(result) > _DNF_LIMIT:
                return None
        return result
    return None


def _refute_conjunction(atoms: Sequence[Atom]) -> bool:
    """Prove one conjunction of ``<= 0`` / ``== 0`` atoms integer-infeasible."""
    equalities: List[LinearExpression] = []
    inequalities: List[LinearExpression] = []
    for atom in atoms:
        if atom.comparison == Comparison.EQ:
            equalities.append(atom.expression)
        else:
            inequalities.append(atom.expression)
    fuel = _ELIMINATION_FUEL
    while equalities:
        if fuel <= 0:
            return False
        fuel -= 1
        expression = equalities.pop()
        items = expression.items
        if not items:
            if expression.constant != 0:
                return True
            continue
        divisor = 0
        for _, coefficient in items:
            divisor = gcd(divisor, abs(coefficient))
        if expression.constant % divisor != 0:
            return True  # gcd divisibility test: no integer solution
        if divisor > 1:
            expression = LinearExpression(
                {name: coefficient // divisor for name, coefficient in items},
                expression.constant // divisor,
            )
            items = expression.items
        unit = next(
            (
                (name, coefficient)
                for name, coefficient in items
                if coefficient in (1, -1)
            ),
            None,
        )
        if unit is None:
            # No unit coefficient left: fall back to the two inequalities.
            inequalities.append(expression)
            inequalities.append(-expression)
            continue
        name, coefficient = unit
        rest = LinearExpression(
            {n: c for n, c in items if n != name}, expression.constant
        )
        replacement = -rest if coefficient == 1 else rest
        assignment = {name: replacement}
        equalities = [e.substitute(assignment) for e in equalities]
        inequalities = [e.substitute(assignment) for e in inequalities]
    if _fourier_motzkin(inequalities):
        return True
    # A rational model may still have no integer points (e.g. 2a+3b+4c == 1
    # with a,b,c >= 0): propagate integer bounds and, if the feasible box is
    # small, enumerate it exhaustively.
    return _box_refute(inequalities)


def _fourier_motzkin(expressions: Sequence[LinearExpression]) -> bool:
    """Rational Fourier–Motzkin on ``expr <= 0`` rows; True = infeasible."""
    rows: List[Tuple[Dict[str, Fraction], Fraction]] = [
        (
            {name: Fraction(coefficient) for name, coefficient in e.items},
            Fraction(e.constant),
        )
        for e in expressions
    ]
    while True:
        pending = []
        for coefficients, constant in rows:
            if coefficients:
                pending.append((coefficients, constant))
            elif constant > 0:
                return True
        rows = pending
        if not rows:
            return False
        counts: Dict[str, Tuple[int, int]] = {}
        for coefficients, _ in rows:
            for name, coefficient in coefficients.items():
                plus, minus = counts.get(name, (0, 0))
                counts[name] = (
                    plus + (coefficient > 0),
                    minus + (coefficient < 0),
                )
        variable = min(counts, key=lambda name: counts[name][0] * counts[name][1])
        positive = []
        negative = []
        remaining = []
        for row in rows:
            coefficient = row[0].get(variable, Fraction(0))
            if coefficient > 0:
                positive.append(row)
            elif coefficient < 0:
                negative.append(row)
            else:
                remaining.append(row)
        combined = remaining
        for upper_coefficients, upper_constant in positive:
            a = upper_coefficients[variable]
            for lower_coefficients, lower_constant in negative:
                b = -lower_coefficients[variable]
                merged: Dict[str, Fraction] = {}
                for name, coefficient in upper_coefficients.items():
                    if name != variable:
                        merged[name] = merged.get(name, Fraction(0)) + b * coefficient
                for name, coefficient in lower_coefficients.items():
                    if name != variable:
                        merged[name] = merged.get(name, Fraction(0)) + a * coefficient
                merged = {
                    name: value for name, value in merged.items() if value != 0
                }
                constant = b * upper_constant + a * lower_constant
                if not merged:
                    if constant > 0:
                        return True
                    continue
                combined.append((merged, constant))
                if len(combined) > _FM_ROW_LIMIT:
                    return False
        rows = combined
        if not rows:
            return False


def _box_refute(expressions: Sequence[LinearExpression]) -> bool:
    """Integer bound propagation + exhaustive small-box search; True = UNSAT.

    Each expression is a row ``sum(c_i * x_i) + k <= 0``.  Bounds on each
    variable are tightened from the rows (using the other variables' current
    bounds), which is sound for every integer solution; an empty interval
    proves infeasibility outright.  When every constrained variable ends up
    with a finite interval and the box is small, the box is enumerated — no
    satisfying point proves infeasibility exactly.  Everything else is a
    give-up (False), never an accept.
    """
    rows: List[Tuple[Dict[str, int], int]] = []
    for expression in expressions:
        coefficients = {
            name: coefficient for name, coefficient in expression.items if coefficient
        }
        if not coefficients:
            if expression.constant > 0:
                return True
            continue
        rows.append((coefficients, expression.constant))
    if not rows:
        return False
    bounds: Dict[str, List[Optional[int]]] = {
        name: [None, None] for coefficients, _ in rows for name in coefficients
    }
    for _ in range(_BOX_PROPAGATION_FUEL):
        changed = False
        for coefficients, constant in rows:
            for name, coefficient in coefficients.items():
                # c*x <= -k - min(rest) over the current bounds of the rest.
                residual = -constant
                for other, other_coefficient in coefficients.items():
                    if other == name:
                        continue
                    low, high = bounds[other]
                    edge = low if other_coefficient > 0 else high
                    if edge is None:
                        residual = None
                        break
                    residual -= other_coefficient * edge
                if residual is None:
                    continue
                low, high = bounds[name]
                if coefficient > 0:
                    ceiling = residual // coefficient
                    if high is None or ceiling < high:
                        bounds[name][1] = ceiling
                        changed = True
                else:
                    floor = -(residual // -coefficient)
                    if low is None or floor > low:
                        bounds[name][0] = floor
                        changed = True
                low, high = bounds[name]
                if low is not None and high is not None and low > high:
                    return True  # empty interval: no integer solution
        if not changed:
            break
    box_size = 1
    for low, high in bounds.values():
        if low is None or high is None:
            return False
        box_size *= high - low + 1
        if box_size > _BOX_ENUM_LIMIT:
            return False
    names = list(bounds)
    for point in product(
        *(range(bounds[name][0], bounds[name][1] + 1) for name in names)
    ):
        values = dict(zip(names, point))
        if all(
            sum(c * values[name] for name, c in coefficients.items()) + constant <= 0
            for coefficients, constant in rows
        ):
            return False  # found an integer point: genuinely satisfiable
    return True  # box exhausted with no satisfying point
