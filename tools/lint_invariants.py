#!/usr/bin/env python3
"""Static lint for the repo's cross-cutting code invariants.

Three rules, each guarding an invariant the runtime cannot cheaply check:

* **intern-bypass** — the interned value types (``IntVector``,
  ``BoolVector``, ``Term``, ``LinearSet``, ``SemiLinearSet``) must only be
  constructed through their canonical ``__new__``/``_wrap`` path, which
  routes every instance through the weak intern table.  Any
  ``object.__new__(IntVector)`` or ``IntVector.__new__(...)`` outside the
  defining module creates an un-interned twin: structural equality keeps
  working, but pointer-identity fast paths and ``is``-based cache hits
  silently stop firing.
* **identity-literal** — ``is`` / ``is not`` comparisons against literals
  (numbers, strings, tuple/list/dict displays).  Those compare object
  identity, not value, and only appear to work through CPython's small-int
  and string caches.  ``is None`` / ``is True`` / ``is False`` and
  comparisons between two names stay allowed — identity *is* the contract
  for interned and sentinel values.
* **protocol** — every class registered via ``@register_engine`` defines
  (or inherits) ``check`` and ``solve``; every ``@register_domain`` class
  defines (or inherits) ``bottom``, ``join``, ``equal``, ``transfer`` and
  ``check``.  The registries store classes and construct lazily, so a
  missing method only explodes when that engine is first *used* — this
  rule moves the failure to lint time.  Inheritance is resolved by class
  name across all linted files (``IntervalDomain`` in ``interval.py``
  inherits ``ExampleVectorDomain`` from ``base.py``).

Usage::

    python tools/lint_invariants.py [path ...]

Paths default to ``src/repro``.  Exit status is the number of violations
(0 = healthy), so CI can run it directly.  Stdlib only, like everything
else in this repo.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

#: Value types whose constructors intern through a weak table.  Constructing
#: them any other way breaks the "equal implies identical" invariant.
INTERNED_TYPES = frozenset(
    {"IntVector", "BoolVector", "Term", "LinearSet", "SemiLinearSet"}
)

#: Modules allowed to touch ``object.__new__`` for the interned types: the
#: files that *define* them (their ``_wrap``/``__new__`` bodies live here).
DEFINING_MODULE_SUFFIXES = (
    "utils/vectors.py",
    "grammar/terms.py",
    "domains/semilinear.py",
)

#: Methods an ``@register_engine`` class must define or inherit.
ENGINE_PROTOCOL = frozenset({"check", "solve"})

#: Methods a ``@register_domain`` class must define or inherit.
DOMAIN_PROTOCOL = frozenset({"bottom", "join", "equal", "transfer", "check"})

#: Literal AST nodes whose identity is an implementation accident.
_DISPLAY_NODES = (ast.List, ast.Tuple, ast.Dict, ast.Set, ast.JoinedStr)


@dataclass(frozen=True)
class Violation:
    """One lint finding, formatted ``path:line: [rule] message``."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class _ClassInfo:
    """What one ``class`` statement contributes to protocol resolution."""

    name: str
    path: str
    line: int
    bases: Tuple[str, ...]
    methods: Set[str]
    registered_as: Tuple[str, ...]  # () | ("engine",) | ("domain",) | both


def _base_name(node: ast.expr) -> str:
    """The trailing identifier of a base-class expression, or ``""``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):  # Generic[...] style bases
        return _base_name(node.value)
    return ""


def _registration_kinds(node: ast.ClassDef) -> Tuple[str, ...]:
    kinds = []
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _base_name(target)
        if name == "register_engine":
            kinds.append("engine")
        elif name == "register_domain":
            kinds.append("domain")
    return tuple(kinds)


def _is_identity_literal(node: ast.expr) -> bool:
    """Is this operand a literal whose identity is not a stable contract?"""
    if isinstance(node, ast.Constant):
        return node.value is not None and not isinstance(node.value, bool)
    return isinstance(node, _DISPLAY_NODES)


class _FileLinter(ast.NodeVisitor):
    """One pass over a module: local rules plus class harvesting."""

    def __init__(self, path: str, in_defining_module: bool) -> None:
        self.path = path
        self.in_defining_module = in_defining_module
        self.violations: List[Violation] = []
        self.classes: List[_ClassInfo] = []

    # -- rule: intern-bypass -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        function = node.func
        if isinstance(function, ast.Attribute) and function.attr == "__new__":
            owner = function.value
            bypassed = None
            if (
                isinstance(owner, ast.Name)
                and owner.id == "object"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in INTERNED_TYPES
            ):
                bypassed = node.args[0].id
            elif isinstance(owner, ast.Name) and owner.id in INTERNED_TYPES:
                bypassed = owner.id
            if bypassed is not None and not self.in_defining_module:
                self.violations.append(
                    Violation(
                        self.path,
                        node.lineno,
                        "intern-bypass",
                        f"{bypassed} constructed via __new__ outside its "
                        f"defining module; use the {bypassed}(...) "
                        f"constructor so the instance is interned",
                    )
                )
        self.generic_visit(node)

    # -- rule: identity-literal ----------------------------------------------

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Is, ast.IsNot)):
                continue
            pair = (operands[index], operands[index + 1])
            if any(_is_identity_literal(operand) for operand in pair):
                self.violations.append(
                    Violation(
                        self.path,
                        node.lineno,
                        "identity-literal",
                        "'is' comparison against a literal compares object "
                        "identity, not value; use == (identity is only a "
                        "contract for interned/sentinel values)",
                    )
                )
        self.generic_visit(node)

    # -- class harvesting for the protocol rule ------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            child.name
            for child in node.body
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        bases = tuple(
            name for name in (_base_name(base) for base in node.bases) if name
        )
        self.classes.append(
            _ClassInfo(
                name=node.name,
                path=self.path,
                line=node.lineno,
                bases=bases,
                methods=methods,
                registered_as=_registration_kinds(node),
            )
        )
        self.generic_visit(node)


def _resolve_methods(
    class_name: str, by_name: Dict[str, _ClassInfo], seen: Set[str]
) -> Set[str]:
    """All methods ``class_name`` defines or inherits, resolved by name."""
    if class_name in seen:
        return set()
    seen.add(class_name)
    info = by_name.get(class_name)
    if info is None:
        return set()
    methods = set(info.methods)
    for base in info.bases:
        methods |= _resolve_methods(base, by_name, seen)
    return methods


def _check_protocols(classes: Sequence[_ClassInfo]) -> List[Violation]:
    by_name = {info.name: info for info in classes}
    requirements = {"engine": ENGINE_PROTOCOL, "domain": DOMAIN_PROTOCOL}
    violations: List[Violation] = []
    for info in classes:
        for kind in info.registered_as:
            required = requirements[kind]
            available = _resolve_methods(info.name, by_name, set())
            missing = sorted(required - available)
            if missing:
                violations.append(
                    Violation(
                        info.path,
                        info.line,
                        "protocol",
                        f"@register_{kind} class {info.name} is missing "
                        f"required method(s): {', '.join(missing)}",
                    )
                )
    return violations


def python_files(paths: Iterable[Path]) -> List[Path]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Iterable[Path]) -> List[Violation]:
    """Lint every ``.py`` file under ``paths``; return all violations."""
    violations: List[Violation] = []
    classes: List[_ClassInfo] = []
    for path in python_files(paths):
        text = path.as_posix()
        try:
            tree = ast.parse(path.read_text(), filename=text)
        except SyntaxError as error:
            violations.append(
                Violation(text, error.lineno or 0, "syntax", str(error.msg))
            )
            continue
        linter = _FileLinter(
            text, text.endswith(DEFINING_MODULE_SUFFIXES)
        )
        linter.visit(tree)
        violations.extend(linter.violations)
        classes.extend(linter.classes)
    violations.extend(_check_protocols(classes))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule))


def main(argv: Sequence[str]) -> int:
    roots = [Path(arg) for arg in argv] or [Path("src/repro")]
    violations = lint_paths(roots)
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} invariant violation(s)")
    else:
        print("invariants OK")
    return len(violations)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
