#!/usr/bin/env python3
"""Check intra-repo Markdown links for dangling targets.

Scans the documentation surface (README.md, DESIGN.md, CHANGES.md,
PAPER.md, PAPERS.md, and everything under docs/) for inline Markdown links
``[text](target)`` and fails when a *relative* target does not resolve to a
file or directory in the repository.  External links (``http(s)://``,
``mailto:``) are ignored — this guard is about repo self-consistency, not
the internet.  Fragments are checked for Markdown targets: ``page.md#anchor``
must match a heading in ``page.md`` (GitHub slugging rules, approximately).

Usage::

    python tools/check_links.py [root]

Exit status is the number of dangling links (0 = healthy), so CI can run it
directly.  Stdlib only, like everything else in this repo.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: Inline Markdown links; deliberately simple (no reference-style links are
#: used in this repo) but careful to stop at the first closing parenthesis.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: ATX headings, for anchor checking.
HEADING_PATTERN = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def documentation_files(root: Path) -> List[Path]:
    files = [
        root / name
        for name in ("README.md", "DESIGN.md", "CHANGES.md", "PAPER.md", "PAPERS.md")
        if (root / name).exists()
    ]
    files.extend(sorted((root / "docs").rglob("*.md")))
    return files


def github_slug(heading: str) -> str:
    """GitHub's heading-to-anchor slug, close enough for this repo's docs."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(path: Path) -> List[str]:
    return [github_slug(match) for match in HEADING_PATTERN.findall(path.read_text())]


def check_file(path: Path, root: Path) -> Iterable[Tuple[Path, str, str]]:
    """Yield ``(source, target, reason)`` for every dangling link in one file."""
    for target in LINK_PATTERN.findall(path.read_text()):
        if target.startswith(EXTERNAL_PREFIXES):
            continue
        base, _, fragment = target.partition("#")
        if not base:  # same-file anchor
            if fragment and github_slug(fragment) not in heading_slugs(path):
                yield path, target, "no such heading in this file"
            continue
        resolved = (path.parent / base).resolve()
        try:
            resolved.relative_to(root.resolve())
        except ValueError:
            yield path, target, "escapes the repository"
            continue
        if not resolved.exists():
            yield path, target, "no such file or directory"
            continue
        if fragment and resolved.suffix == ".md":
            if github_slug(fragment) not in heading_slugs(resolved):
                yield path, target, f"no heading #{fragment} in {base}"


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).resolve().parent.parent
    dangling = []
    files = documentation_files(root)
    for path in files:
        dangling.extend(check_file(path, root))
    for source, target, reason in dangling:
        print(f"{source.relative_to(root)}: ({target}) -> {reason}")
    print(
        f"checked {len(files)} markdown files: "
        f"{len(dangling)} dangling link(s)"
    )
    return len(dangling)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
